package core

import (
	"context"
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"time"

	"edr/internal/cohort"
	"edr/internal/engine"
	"edr/internal/opt"
	"edr/internal/telemetry"
	"edr/internal/transport"
)

// RoundReport summarizes a completed scheduling round. It is also the
// JSON document the admin plane embeds in /status.
type RoundReport struct {
	// Round is the initiator-local round id.
	Round int `json:"round"`
	// Algorithm names the method used.
	Algorithm string `json:"algorithm"`
	// Iterations is how many distributed iterations ran.
	Iterations int `json:"iterations"`
	// Restarts counts ring-failure restarts the round survived.
	Restarts int `json:"restarts"`
	// ReplicaAddrs and ClientAddrs give the final participants in
	// column/row order.
	ReplicaAddrs []string `json:"replica_addrs"`
	ClientAddrs  []string `json:"client_addrs"`
	// Assignment is the final load split (clients × replicas).
	Assignment [][]float64 `json:"assignment"`
	// Objective is the total energy cost of the assignment (0 when a
	// degraded round could not rebuild the cost model).
	Objective float64 `json:"objective"`
	// Degraded reports that coordination kept failing after RoundRetries
	// restarts and the round fell back to the last-known-good assignment
	// renormalized over the reachable replicas. Demand is still fully
	// assigned, but the split is stale rather than re-optimized.
	Degraded bool `json:"degraded"`
	// WarmStarted reports that the solvers were seeded from the previous
	// round's assignment renormalized over this round's roster instead of
	// the cold uniform start (see ReplicaConfig.ColdStart).
	WarmStarted bool `json:"warm_started,omitempty"`
	// Cohorts is the number of virtual clients the distributed loop
	// solved over when cohort aggregation was active (see
	// ReplicaConfig.CohortMinClients); 0 means the round ran at raw
	// client granularity. ClientAddrs and Assignment are always
	// per-client either way — disaggregation happens before install.
	Cohorts int `json:"cohorts,omitempty"`
	// CohortRatio is the grouping's compression ratio |C|/|K|
	// (0 when ungrouped).
	CohortRatio float64 `json:"cohort_ratio,omitempty"`
	// Incremental reports that the round re-solved only the dirty subset
	// of clients against residual capacity (see ReplicaConfig.Incremental),
	// with every clean client keeping its committed row. A round with
	// DirtyClients == 0 committed the previous assignment outright.
	Incremental bool `json:"incremental,omitempty"`
	// DirtyClients is how many clients the incremental diff re-solved
	// (len(ClientAddrs) on full rounds with Incremental unset).
	DirtyClients int `json:"dirty_clients,omitempty"`
	// SuppressedNotifies counts clients not re-notified because their
	// allocation row moved at most DeltaEps of their demand.
	SuppressedNotifies int `json:"suppressed_notifies,omitempty"`
	// Duration is the wall time of the whole round, restarts included.
	Duration time.Duration `json:"duration_ns"`
	// Residuals and Costs are the per-iteration convergence residual and
	// energy-cost trajectories. They are recorded only when the replica's
	// telemetry bus has subscribers (ReplicaConfig.Telemetry), so the
	// round hot path does no extra work in an unobserved fleet. Residual
	// semantics are algorithm-specific: max relative demand residual for
	// LDDM, max absolute primal residual for ADMM, max estimate movement
	// for CDPSM. Costs is empty for CDPSM (the initiator holds no primal
	// iterate between consensus steps).
	Residuals []float64 `json:"residuals,omitempty"`
	Costs     []float64 `json:"costs,omitempty"`
}

// roundTrace accumulates per-iteration trajectories during the
// distributed loop; inert when observe is false.
type roundTrace struct {
	observe   bool
	residuals []float64
	costs     []float64
}

// add records one iteration's residual and cost (NaN cost = not
// available this algorithm/iteration).
func (tr *roundTrace) add(residual, cost float64) {
	if !tr.observe {
		return
	}
	tr.residuals = append(tr.residuals, residual)
	if !math.IsNaN(cost) {
		tr.costs = append(tr.costs, cost)
	}
}

// failedMemberError marks a coordination failure attributable to one
// replica; the round restarts without it.
type failedMemberError struct {
	addr string
	err  error
}

func (e *failedMemberError) Error() string {
	return fmt.Sprintf("core: member %s failed: %v", e.addr, e.err)
}

func (e *failedMemberError) Unwrap() error { return e.err }

// sendMsg performs one coordination RPC attempt of a prebuilt message
// with the configured timeout.
func (r *ReplicaServer) sendMsg(ctx context.Context, to string, req transport.Message) (transport.Message, error) {
	cctx, cancel := context.WithTimeout(ctx, r.cfg.RPCTimeout)
	defer cancel()
	resp, err := r.node.Send(cctx, to, req)
	r.Stats.CoordMessages.Inc(1)
	return resp, err
}

// sendRetry performs a coordination RPC, retrying transient failures up to
// SendRetries times with exponential backoff and jitter. The body is
// marshaled once; retries resend the identical bytes.
func (r *ReplicaServer) sendRetry(ctx context.Context, to, msgType string, body any) (transport.Message, error) {
	req, err := r.newMessage(msgType, body)
	if err != nil {
		return transport.Message{}, err
	}
	return r.sendMsgRetry(ctx, to, req)
}

// sendMsgRetry is the retry loop over a prebuilt message. Retrying is safe
// because a failed attempt was never delivered (both fabrics fail sends
// before the destination handler runs), so a lost packet or a latency
// spike costs a retry, not a member's life. Retries stop as soon as the
// surrounding context ends — a cancelled fan-out wave must not keep
// hammering a peer.
func (r *ReplicaServer) sendMsgRetry(ctx context.Context, to string, req transport.Message) (transport.Message, error) {
	var lastErr error
	for attempt := 0; attempt <= r.cfg.SendRetries; attempt++ {
		if attempt > 0 {
			if err := sleepBackoff(ctx, r.cfg.RetryBase, attempt); err != nil {
				break
			}
			r.Stats.SendRetried.Inc(1)
			r.cfg.Telemetry.Publish(telemetry.RPCRetried{Peer: to, Verb: req.Type, Attempt: attempt})
		}
		resp, err := r.sendMsg(ctx, to, req)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			break // the wave was cancelled, not the peer failing
		}
	}
	return transport.Message{}, lastErr
}

// sleepBackoff waits RetryBase·2^(attempt−1) with ±50% jitter, honoring
// ctx cancellation. Jitter decorrelates the fleet's retry storms.
func sleepBackoff(ctx context.Context, base time.Duration, attempt int) error {
	d := base << (attempt - 1)
	if max := 5 * time.Second; d > max {
		d = max
	}
	d = d/2 + time.Duration(rand.Int64N(int64(d)))
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// sendReplica is sendRetry with member-failure attribution: only after the
// retry budget is exhausted is the failure pinned on the destination.
func (r *ReplicaServer) sendReplica(ctx context.Context, to, msgType string, body any) (transport.Message, error) {
	resp, err := r.sendRetry(ctx, to, msgType, body)
	if err != nil {
		if ctx.Err() != nil {
			// The round's own budget ran out (or its wave was cancelled)
			// mid-send. That is the initiator's failure, not the peer's:
			// attributing it would declare live members dead whenever a
			// slow round hits its deadline.
			return transport.Message{}, err
		}
		return transport.Message{}, &failedMemberError{addr: to, err: err}
	}
	return resp, nil
}

// msgReply adapts a transport.Message to the engine's Reply.
type msgReply struct{ m transport.Message }

func (mr msgReply) Decode(into any) error { return mr.m.DecodeBody(into) }

// roundTransport adapts the replica's retry/attribution stack to the
// engine's Transport: replica sends carry member-failure attribution so
// RunRound can prune the peer and restart; client sends retry without it
// (clients are not ring members).
type roundTransport struct{ r *ReplicaServer }

func (t roundTransport) Replica(ctx context.Context, addr, verb string, body any) (engine.Reply, error) {
	resp, err := t.r.sendReplica(ctx, addr, verb, body)
	if err != nil {
		return nil, err
	}
	return msgReply{resp}, nil
}

func (t roundTransport) Client(ctx context.Context, addr, verb string, body any) (engine.Reply, error) {
	resp, err := t.r.sendRetry(ctx, addr, verb, body)
	if err != nil {
		return nil, err
	}
	return msgReply{resp}, nil
}

// RunRound schedules all pending requests: it drains the queue, runs the
// configured distributed algorithm across the current ring, installs the
// assignment on the replicas, and notifies the clients. When a ring member
// fails mid-round — meaning every RPC retry to it was exhausted — the
// member is declared dead (pruned and broadcast, §III-C) and the round
// restarts on the survivors, up to RoundRetries times. When the retry
// budget itself is exhausted the round degrades instead of failing: the
// last-known-good assignment is renormalized over the reachable replicas
// and reported with Degraded set, so the fleet keeps serving through an
// outage the optimizer cannot coordinate across.
func (r *ReplicaServer) RunRound(ctx context.Context) (*RoundReport, error) {
	// Drain the pending queue into this round.
	r.mu.Lock()
	if len(r.pending) == 0 {
		r.mu.Unlock()
		return nil, fmt.Errorf("core: replica %s: no pending requests", r.Addr())
	}
	requests := make([]*RequestBody, 0, len(r.pending))
	for _, req := range r.pending {
		requests = append(requests, req)
	}
	r.pending = make(map[string]*RequestBody)
	r.mu.Unlock()
	// Deterministic row order (the pending map iterates randomly): a
	// stable roster then yields identical row order round over round,
	// which is what lets the incremental diff run with identity row maps
	// and the cohort registry hit its cross-round cache.
	sort.Slice(requests, func(i, j int) bool { return requests[i].ClientAddr < requests[j].ClientAddr })
	r.Stats.RoundsInitiated.Inc(1)
	start := time.Now()

	var lastErr error
	restarts := 0
	for attempt := 0; attempt <= r.cfg.RoundRetries; attempt++ {
		report, err := r.runRoundOnce(ctx, requests, restarts)
		if err == nil {
			r.finishRound(report, start)
			return report, nil
		}
		lastErr = err
		var fail *failedMemberError
		if attempt < r.cfg.RoundRetries && asFailedMember(err, &fail) && r.ring.Contains(fail.addr) && fail.addr != r.Addr() {
			// Prune the dead member, tell the survivors, retry.
			r.mon.DeclareDead(fail.addr)
			r.Stats.RoundsRestarted.Inc(1)
			restarts++
			continue
		}
		break
	}

	// Graceful degradation: a coordination failure with no retries left
	// falls back to the last-known-good split rather than erroring the
	// round. The failed member is excluded from the fallback but NOT
	// declared dead — if its failure was transient (a partition, a loss
	// burst) it rejoins the next round untouched. Non-coordination errors
	// (infeasible demand, bad specs) still surface: stale assignments
	// cannot fix a problem that was never solvable.
	var fail *failedMemberError
	if asFailedMember(lastErr, &fail) && ctx.Err() == nil {
		if report, ok := r.degradedRound(ctx, requests, restarts, fail.addr); ok {
			r.finishRound(report, start)
			r.cfg.Telemetry.Publish(telemetry.RoundDegraded{
				Round:        report.Round,
				FailedMember: fail.addr,
				Restarts:     restarts,
			})
			return report, nil
		}
	}
	// The round failed outright. Put the drained requests back so the next
	// round (the daemon's next tick) retries them; a client that
	// resubmitted in the meantime keeps its newer demand.
	r.mu.Lock()
	for _, req := range requests {
		if _, ok := r.pending[req.ClientAddr]; !ok {
			r.pending[req.ClientAddr] = req
		}
	}
	r.mu.Unlock()
	if lastErr != nil {
		r.cfg.Telemetry.Publish(telemetry.RoundFailed{Err: lastErr.Error()})
	}
	return nil, lastErr
}

// finishRound stamps the report's duration, remembers it for the admin
// plane, and publishes the RoundCompleted event.
func (r *ReplicaServer) finishRound(report *RoundReport, start time.Time) {
	report.Duration = time.Since(start)
	r.mu.Lock()
	r.lastReport = report
	r.mu.Unlock()
	r.cfg.Telemetry.Publish(telemetry.RoundCompleted{
		Round:              report.Round,
		Algorithm:          report.Algorithm,
		Iterations:         report.Iterations,
		Restarts:           report.Restarts,
		Clients:            len(report.ClientAddrs),
		Replicas:           len(report.ReplicaAddrs),
		Objective:          report.Objective,
		Duration:           report.Duration,
		Degraded:           report.Degraded,
		Cohorts:            report.Cohorts,
		CohortRatio:        report.CohortRatio,
		Incremental:        report.Incremental,
		DirtyClients:       report.DirtyClients,
		SuppressedNotifies: report.SuppressedNotifies,
		Residuals:          report.Residuals,
		Costs:              report.Costs,
	})
}

// degradedRound builds a best-effort round from the last successful one:
// the stale assignment restricted to reachable replicas, renormalized per
// client so every demand is fully assigned. Returns false when there is no
// usable history (no prior success, or no surviving replica columns).
func (r *ReplicaServer) degradedRound(ctx context.Context, requests []*RequestBody, restarts int, failedAddr string) (*RoundReport, bool) {
	r.mu.Lock()
	lg := r.lastGood
	r.mu.Unlock()
	if lg == nil {
		return nil, false
	}
	// Surviving columns: active (non-drained) ring members minus the
	// member the failure was attributed to (unreachable right now, though
	// possibly still alive).
	var cols []int
	for j, info := range lg.infos {
		if info.Addr != failedAddr && r.ring.Contains(info.Addr) && !r.member.IsDrained(info.Addr) {
			cols = append(cols, j)
		}
	}
	if len(cols) == 0 {
		return nil, false
	}
	infos := make([]ReplicaInfo, len(cols))
	replicaAddrs := make([]string, len(cols))
	for jj, j := range cols {
		infos[jj] = lg.infos[j]
		replicaAddrs[jj] = lg.infos[j].Addr
	}
	rowOf := make(map[string]int, len(lg.clientAddrs))
	for i, addr := range lg.clientAddrs {
		rowOf[addr] = i
	}

	// Renormalize per client (shared warm-start kernel): keep the
	// last-good proportions across the surviving replicas; clients with
	// no history (or whose entire last split landed on lost replicas)
	// spread uniformly over their latency-feasible columns, and cap
	// excess is redistributed onto replicas with headroom.
	weights := opt.NewMatrix(len(requests), len(cols))
	demands := make([]float64, len(requests))
	clientAddrs := make([]string, len(requests))
	caps := make([]float64, len(cols))
	for jj := range cols {
		caps[jj] = infos[jj].Bandwidth
	}
	allowed := make([][]bool, len(requests))
	for i, req := range requests {
		clientAddrs[i] = req.ClientAddr
		demands[i] = req.DemandMB
		allowed[i] = make([]bool, len(cols))
		for jj := range cols {
			l, ok := req.LatencySec[infos[jj].Addr]
			allowed[i][jj] = ok && l <= r.cfg.MaxLatencySec
		}
		if row, ok := rowOf[req.ClientAddr]; ok {
			for jj, j := range cols {
				weights[i][jj] = lg.assignment[row][j]
			}
		}
	}
	assignment := opt.Renormalize(weights, demands, caps, allowed)

	r.mu.Lock()
	r.roundSeq++
	round := r.roundSeq
	r.mu.Unlock()

	// Install the plan and notify the clients best-effort: a replica we
	// cannot reach keeps its previous plan, which is exactly the fallback
	// we are re-publishing.
	_ = engine.FanOut(ctx, len(cols), func(ctx context.Context, jj int) error {
		col := make([]float64, len(clientAddrs))
		for i := range clientAddrs {
			col[i] = assignment[i][jj]
		}
		body := AssignBody{Round: round, Column: col, ClientAddrs: clientAddrs}
		_, _ = r.sendRetry(ctx, replicaAddrs[jj], MsgAssign, body)
		return nil
	})
	r.notifyClients(ctx, round, clientAddrs, infos, assignment, 0)

	// The objective is recomputed from the cached energy models when
	// possible; a failure here degrades the report, not the round.
	objective := 0.0
	spec := RoundSpec{Round: round, Replicas: infos, MaxLatencySec: r.cfg.MaxLatencySec}
	for i, req := range requests {
		spec.ClientAddrs = append(spec.ClientAddrs, req.ClientAddr)
		spec.Demands = append(spec.Demands, req.DemandMB)
		row := make([]float64, len(infos))
		for j, info := range infos {
			if l, ok := req.LatencySec[info.Addr]; ok {
				row[j] = l
			} else {
				row[j] = 10 * r.cfg.MaxLatencySec
			}
		}
		spec.LatencySec = append(spec.LatencySec, row)
		_ = i
	}
	if prob, err := specProblem(&spec); err == nil {
		objective = prob.Cost(assignment)
	}

	r.Stats.RoundsDegraded.Inc(1)
	return &RoundReport{
		Round:        round,
		Algorithm:    r.cfg.Algorithm.String(),
		Iterations:   0,
		Restarts:     restarts,
		ReplicaAddrs: replicaAddrs,
		ClientAddrs:  clientAddrs,
		Assignment:   assignment,
		Objective:    objective,
		Degraded:     true,
	}, true
}

// ServeRounds runs scheduling rounds on a timer until ctx ends: every
// interval, pending requests (if any) are scheduled with RunRound. Round
// outcomes are delivered to onRound (which may be nil); errors to onError
// (which may be nil). This is the loop cmd/edrd runs; it lives here so
// deployments embedding the library get the same behavior.
func (r *ReplicaServer) ServeRounds(ctx context.Context, interval time.Duration, onRound func(*RoundReport), onError func(error)) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			if r.PendingRequests() == 0 {
				continue
			}
			rctx, cancel := context.WithTimeout(ctx, 10*interval)
			report, err := r.RunRound(rctx)
			cancel()
			if err != nil {
				if onError != nil {
					onError(err)
				}
				continue
			}
			if onRound != nil {
				onRound(report)
			}
		}
	}
}

// asFailedMember unwraps err into *failedMemberError.
func asFailedMember(err error, target **failedMemberError) bool {
	for err != nil {
		if fe, ok := err.(*failedMemberError); ok {
			*target = fe
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// runRoundOnce executes one attempt over the current ring membership. The
// first try may take the incremental path (dirty-subset solve against the
// committed assignment); when the incremental gate rejects its result, the
// attempt re-runs immediately as a full solve — escalation is a retry of
// this attempt, not a round restart.
func (r *ReplicaServer) runRoundOnce(ctx context.Context, requests []*RequestBody, restarts int) (*RoundReport, error) {
	report, err := r.runRoundAttempt(ctx, requests, restarts, true)
	if err == errEscalateFull {
		r.Stats.RoundsEscalated.Inc(1)
		report, err = r.runRoundAttempt(ctx, requests, restarts, false)
	}
	return report, err
}

// runRoundAttempt executes one attempt over the current ring membership,
// excluding drained members (they keep heartbeating and serving installed
// plans, but take no new load — the membership layer's drain semantics).
func (r *ReplicaServer) runRoundAttempt(ctx context.Context, requests []*RequestBody, restarts int, allowIncremental bool) (*RoundReport, error) {
	members := r.activeMembers()
	if len(members) == 0 {
		return nil, fmt.Errorf("core: replica %s: no active ring members", r.Addr())
	}

	// 1. Gather every member's model parameters (parallel fan-out).
	infos := make([]ReplicaInfo, len(members))
	if err := engine.FanOut(ctx, len(members), func(ctx context.Context, i int) error {
		resp, err := r.sendReplica(ctx, members[i], MsgReplicaInfo, nil)
		if err != nil {
			return err
		}
		return resp.DecodeBody(&infos[i])
	}); err != nil {
		return nil, err
	}
	// Deterministic column order, mirroring the request-row sort: byte
	// keys in the cohort registry and row/column maps in the incremental
	// diff stay aligned across rounds of a stable roster.
	sort.Slice(infos, func(i, j int) bool { return infos[i].Addr < infos[j].Addr })

	// 2. Build the round spec: rows in request order, columns in address
	// order. Latencies a client did not measure are treated as beyond the
	// bound (the replica is not a candidate for that client).
	r.mu.Lock()
	r.roundSeq++
	round := r.roundSeq
	r.mu.Unlock()
	spec := RoundSpec{
		Round:         round,
		Replicas:      infos,
		MaxLatencySec: r.cfg.MaxLatencySec,
	}
	for _, req := range requests {
		spec.ClientAddrs = append(spec.ClientAddrs, req.ClientAddr)
		spec.Demands = append(spec.Demands, req.DemandMB)
		row := make([]float64, len(infos))
		for j, info := range infos {
			if l, ok := req.LatencySec[info.Addr]; ok {
				row[j] = l
			} else {
				row[j] = 10 * r.cfg.MaxLatencySec // unmeasured → infeasible
			}
		}
		spec.LatencySec = append(spec.LatencySec, row)
	}
	prob, err := specProblem(&spec)
	if err != nil {
		return nil, err
	}

	// Incremental re-optimization: when the committed round covers this
	// one's roster, diff against it and solve only the dirty subset (or
	// commit outright when nothing drifted). Gate failures surface as
	// errEscalateFull, which runRoundOnce answers by re-running this
	// attempt with allowIncremental false.
	if r.cfg.Incremental && allowIncremental {
		if plan := r.planIncremental(requests, infos, prob); plan != nil {
			return r.runIncremental(ctx, requests, infos, &spec, prob, plan, round, restarts)
		}
	}

	// Cohort aggregation: at client scale, merge clients sharing a
	// feasibility mask and latency class into virtual clients and run the
	// distributed loop on the reduced instance. The objective depends on
	// an assignment only through per-replica column sums, so the reduced
	// optimum matches the ungrouped one and disaggregation loses nothing
	// (see internal/cohort). The grouping is skipped when it would not
	// compress — a round over distinct clients gains nothing from an
	// extra indirection. Grouping goes through the cross-round registry:
	// quiet rounds over a stable roster reuse the cached partition and
	// primed sparsity outright, and surviving cohorts keep their relative
	// order either way.
	solveSpec, solveProb := &spec, prob
	var grouping *cohort.Grouping
	if min := r.cfg.CohortMinClients; min > 0 && len(requests) >= min {
		g, _, gerr := r.registry.Group(prob, cohort.Options{
			Quantum:    r.cfg.CohortQuantumSec,
			MaxCohorts: r.cfg.CohortMax,
		})
		if gerr == nil && g.K() < prob.C() {
			grouping = g
			reduced := g.Reduced()
			rspec := &RoundSpec{
				Round:         round,
				Replicas:      infos,
				MaxLatencySec: r.cfg.MaxLatencySec,
				RawClients:    len(requests),
				Demands:       reduced.Demands,
				LatencySec:    reduced.Latency,
			}
			// Each cohort's exchanges (LDDM μ updates, allocation rows)
			// route to one representative member; cohorts are disjoint,
			// so representatives are distinct and the client-side
			// accumulators never collide.
			rspec.ClientAddrs = make([]string, g.K())
			for k := range rspec.ClientAddrs {
				rspec.ClientAddrs[k] = spec.ClientAddrs[g.Members(k)[0]]
			}
			solveSpec, solveProb = rspec, reduced
		}
	}
	if err := opt.CheckFeasible(solveProb); err != nil {
		return nil, err
	}

	// Warm start: when a last-known-good assignment exists, renormalize it
	// over this round's roster and ship it with the spec so every solver
	// seeds from a demand-conserving point near the previous optimum. This
	// is what makes epoch changes cheap — the round after a join or drain
	// re-converges from the old split instead of from the uniform start.
	// Cohorted rounds fold the per-client history into cohort rows (and
	// per-client duals into demand-weighted cohort duals) first.
	var warmMu []float64
	if !r.cfg.ColdStart {
		warm, mu := r.warmStart(requests, infos, prob)
		if grouping != nil && warm != nil {
			// Packed fold: gather the per-client history straight into the
			// cohorts' CSR slots, then scatter once into a pooled |K|×|N|
			// matrix for the spec. No dense |C|×|N| intermediate, and the
			// pooled buffers are done being read before Run releases them
			// (the spec is marshaled at step 3; rd.Warm is consumed in Init).
			_, redSp := grouping.Sparse()
			warmPk := grouping.AggregateRowsPacked(warm, r.pool.Vector(redSp.NNZ()))
			warmK := r.pool.Matrix(grouping.K(), prob.N())
			redSp.Scatter(warmK, warmPk)
			warm = warmK
			if mu != nil {
				mu = grouping.AggregateDualsInto(mu, r.pool.Vector(grouping.K()))
			}
		}
		solveSpec.Warm, warmMu = warm, mu
	}

	// 3. Install the round on every replica (the reduced spec when
	// cohorting is active — participants never see raw client rows).
	if err := engine.FanOut(ctx, len(infos), func(ctx context.Context, i int) error {
		_, err := r.sendReplica(ctx, infos[i].Addr, MsgRoundStart, solveSpec)
		return err
	}); err != nil {
		return nil, err
	}

	// 4. Run the distributed iterations through the solver engine: the
	// registered algorithm supplies the per-iteration exchanges and the
	// convergence test, the shared driver owns fan-out, cancellation, and
	// iteration accounting. Trajectories are recorded only when someone is
	// listening on the telemetry bus — the extra per-iteration objective
	// evaluations stay off the unobserved path.
	reg, ok := engine.Lookup(string(r.cfg.Algorithm))
	if !ok {
		return nil, fmt.Errorf("core: unknown algorithm %q", r.cfg.Algorithm)
	}
	replicaAddrs := make([]string, len(infos))
	for j, info := range infos {
		replicaAddrs[j] = info.Addr
	}
	trace := roundTrace{observe: r.cfg.Telemetry.Active()}
	driver := &engine.Driver{
		Transport: roundTransport{r},
		Observe:   trace.observe,
		OnIterate: func(_ int, residual, cost float64) { trace.add(residual, cost) },
	}
	rd := &engine.Round{
		Seq:          round,
		Prob:         solveProb,
		ReplicaAddrs: replicaAddrs,
		ClientAddrs:  solveSpec.ClientAddrs,
		MaxIters:     r.cfg.MaxIters,
		Tol:          r.cfg.Tol,
		Warm:         solveSpec.Warm,
		WarmMu:       warmMu,
		Pool:         r.pool,
		Par:          r.par,
	}
	alg := reg.New()
	assignment, iterations, err := driver.Run(ctx, alg, rd)
	if err != nil {
		return nil, err
	}

	// 5. Disaggregate a cohorted result back to per-client granularity and
	// install the final plan on replicas, then notify clients. Cohorted
	// rounds stay packed between the engine and the install fan-out: the
	// reduced assignment is gathered into its CSR slots, disaggregated
	// slot-to-slot, and each replica's install column is materialized
	// straight from the packed per-client vector through the CSC view —
	// the only dense |C|×|N| matrix built is the one the report (and the
	// warm-start history) needs anyway.
	if grouping != nil {
		fullSp, redSp := grouping.Sparse()
		vk := redSp.Gather(nil, assignment)
		xPk, derr := grouping.DisaggregatePacked(vk, nil)
		if derr != nil {
			return nil, derr
		}
		if err := engine.FanOut(ctx, len(infos), func(ctx context.Context, j int) error {
			col := make([]float64, len(spec.ClientAddrs))
			for s := fullSp.ColStart[j]; s < fullSp.ColStart[j+1]; s++ {
				col[fullSp.RowIdx[s]] = xPk[fullSp.PosCSR[s]]
			}
			body := AssignBody{Round: round, Column: col, ClientAddrs: spec.ClientAddrs}
			_, err := r.sendReplica(ctx, infos[j].Addr, MsgAssign, body)
			return err
		}); err != nil {
			return nil, err
		}
		r.notifyCohorts(ctx, round, spec.ClientAddrs, grouping, infos, vk, iterations)
		full := opt.NewMatrix(len(spec.ClientAddrs), len(infos)) // escapes into the report
		fullSp.Scatter(full, xPk)
		assignment = full
	} else {
		if err := engine.FanOut(ctx, len(infos), func(ctx context.Context, j int) error {
			col := make([]float64, len(spec.ClientAddrs))
			for i := range spec.ClientAddrs {
				col[i] = assignment[i][j]
			}
			body := AssignBody{Round: round, Column: col, ClientAddrs: spec.ClientAddrs}
			_, err := r.sendReplica(ctx, infos[j].Addr, MsgAssign, body)
			return err
		}); err != nil {
			return nil, err
		}
		r.notifyClients(ctx, round, spec.ClientAddrs, infos, assignment, iterations)
	}

	// Remember this round as the fallback for degraded rounds and the seed
	// for the next warm start (duals included when the algorithm reports
	// them), and cache each participant's model parameters for the
	// autoscaler's pricing signal.
	var mus map[string]float64
	if dr, ok := alg.(engine.DualReporter); ok {
		if duals := dr.Duals(); len(duals) == len(solveSpec.ClientAddrs) {
			mus = make(map[string]float64, len(spec.ClientAddrs))
			if grouping != nil {
				// μ is a per-unit congestion price: every member of a
				// cohort inherits its cohort's dual, so the next round's
				// warm duals cover the full client set.
				for k, v := range duals {
					for _, c := range grouping.Members(k) {
						mus[spec.ClientAddrs[c]] = v
					}
				}
				if r.cfg.CohortDuals {
					r.fanOutCohortDuals(ctx, round, spec.ClientAddrs, grouping, duals)
				}
			} else {
				for i, addr := range spec.ClientAddrs {
					mus[addr] = duals[i]
				}
			}
		}
	}
	objective := prob.Cost(assignment)
	r.mu.Lock()
	r.lastGood = &lastGoodRound{
		round:          round,
		infos:          infos,
		clientAddrs:    spec.ClientAddrs,
		assignment:     assignment,
		mus:            mus,
		prob:           prob,
		objective:      objective,
		installed:      assignment,
		installedRound: round,
	}
	for _, info := range infos {
		r.infoCache[info.Addr] = info
	}
	r.mu.Unlock()

	report := &RoundReport{
		Round:        round,
		Algorithm:    r.cfg.Algorithm.String(),
		Iterations:   iterations,
		Restarts:     restarts,
		ReplicaAddrs: replicaAddrs,
		ClientAddrs:  spec.ClientAddrs,
		Assignment:   assignment,
		Objective:    objective,
		WarmStarted:  solveSpec.Warm != nil,
		Residuals:    trace.residuals,
		Costs:        trace.costs,
	}
	if grouping != nil {
		report.Cohorts = grouping.K()
		report.CohortRatio = grouping.Ratio()
	}
	return report, nil
}

// warmStart builds the round's warm-start matrix (and, when the previous
// round reported duals, the per-client dual seed) from the last-known-good
// assignment: old columns are aligned to the new roster by replica address
// and old rows to the new request set by client address, then the whole
// matrix is renormalized so every row conserves its demand within this
// round's capacity and latency constraints. Returns nils when there is no
// history to warm from.
func (r *ReplicaServer) warmStart(requests []*RequestBody, infos []ReplicaInfo, prob *opt.Problem) ([][]float64, []float64) {
	r.mu.Lock()
	lg := r.lastGood
	r.mu.Unlock()
	if lg == nil {
		return nil, nil
	}
	colOf := make(map[string]int, len(lg.infos))
	for j, info := range lg.infos {
		colOf[info.Addr] = j
	}
	rowOf := make(map[string]int, len(lg.clientAddrs))
	for i, addr := range lg.clientAddrs {
		rowOf[addr] = i
	}
	// Pooled scratch: Renormalize allocates its own output, so weights is
	// dead once it returns (the pool recycles it after the round's solve).
	weights := r.pool.Matrix(len(requests), len(infos))
	var newCols []int
	for j, info := range infos {
		if _, ok := colOf[info.Addr]; !ok {
			newCols = append(newCols, j)
		}
	}
	for i, req := range requests {
		row, ok := rowOf[req.ClientAddr]
		if !ok {
			continue // new client: Renormalize spreads it uniformly
		}
		total, kept := 0.0, 0.0
		for _, v := range lg.assignment[row] {
			total += v
		}
		for j, info := range infos {
			if oj, ok := colOf[info.Addr]; ok {
				weights[i][j] = lg.assignment[row][oj]
				kept += weights[i][j]
			}
		}
		// Mass that lived on departed columns seeds the joined ones: on a
		// swap (drain one member, join another) the new optimum tends to
		// hand the newcomer roughly the departed member's share, so
		// inheriting it lands the seed much closer than spreading the
		// loss over the incumbents.
		if lost := total - kept; lost > 0 && len(newCols) > 0 {
			for _, j := range newCols {
				weights[i][j] = lost / float64(len(newCols))
			}
		}
	}
	caps := make([]float64, len(infos))
	for j, info := range infos {
		caps[j] = info.Bandwidth
	}
	var warmMu []float64
	if lg.mus != nil {
		warmMu = make([]float64, len(requests))
		for i, req := range requests {
			warmMu[i] = lg.mus[req.ClientAddr] // zero for new clients
		}
	}
	return opt.Renormalize(weights, prob.Demands, caps, prob.Allowed()), warmMu
}

// notifyClients delivers each client its allocation. Client failures never
// abort a round: the other clients' allocations stand.
func (r *ReplicaServer) notifyClients(ctx context.Context, round int, clientAddrs []string, infos []ReplicaInfo, assignment [][]float64, iterations int) {
	_ = engine.FanOut(ctx, len(clientAddrs), func(ctx context.Context, i int) error {
		per := make(map[string]float64, len(infos))
		for j, info := range infos {
			if assignment[i][j] > 0 {
				per[info.Addr] = assignment[i][j]
			}
		}
		body := AllocationBody{
			Round:        round,
			PerReplicaMB: per,
			Algorithm:    r.cfg.Algorithm.String(),
			Iterations:   iterations,
		}
		_, _ = r.sendRetry(ctx, clientAddrs[i], MsgAllocation, body)
		return nil
	})
}

// fanOutCohortDuals delivers each cohort's final dual μ to its
// non-representative members (the representative already owns μ through
// the iteration protocol). The body is built and marshaled once per
// cohort. Members that reject the verb — clients predating it — get a
// legacy μ-update instead: their accumulator for this round is untouched
// (only representatives receive in-round updates), so a single step-1
// update with served=μ and demand=0 lands the same absolute value.
// Failures never abort the round.
func (r *ReplicaServer) fanOutCohortDuals(ctx context.Context, round int, clientAddrs []string, g *cohort.Grouping, duals []float64) {
	if len(duals) < g.K() {
		return
	}
	type target struct{ i, k int }
	var targets []target
	msgs := make([]transport.Message, g.K())
	for k := 0; k < g.K(); k++ {
		mem := g.Members(k)
		if len(mem) < 2 {
			continue
		}
		if msg, err := r.newMessage(MsgCohortDuals, CohortDualsBody{Round: round, Mu: duals[k]}); err == nil {
			msgs[k] = msg
		}
		for _, c := range mem[1:] {
			targets = append(targets, target{c, k})
		}
	}
	_ = engine.FanOut(ctx, len(targets), func(ctx context.Context, t int) error {
		tg := targets[t]
		if msgs[tg.k].Type != "" {
			if _, err := r.sendMsgRetry(ctx, clientAddrs[tg.i], msgs[tg.k]); err == nil || ctx.Err() != nil {
				return nil
			}
		}
		body := MuUpdateBody{Round: round, Step: 1, ServedMB: duals[tg.k], DemandMB: 0}
		_, _ = r.sendRetry(ctx, clientAddrs[tg.i], MsgMuUpdate, body)
		return nil
	})
}

// notifyCohorts is the cohorted-round allocation fan-out: every member of a
// cohort receives the same prebuilt message — the cohort's per-unit split
// over its feasible replicas — and reconstructs its own per-replica map
// locally by scaling with its own submitted demand. The body is built and
// marshaled once per cohort instead of once per client, which is what makes
// the notify phase scale with |K| work + |C| sends rather than |C| marshals
// of |N|-entry maps. Clients that do not understand the verb (wire compat
// with older fleets) get the legacy per-client allocation as a fallback.
// Failures never abort the round.
func (r *ReplicaServer) notifyCohorts(ctx context.Context, round int, clientAddrs []string, g *cohort.Grouping, infos []ReplicaInfo, vk []float64, iterations int) {
	_, redSp := g.Sparse()
	msgs := make([]transport.Message, g.K())
	units := make([][]float64, g.K()) // kept for the legacy fallback
	reps := make([][]string, g.K())
	for k := 0; k < g.K(); k++ {
		kb, ke := redSp.RowStart[k], redSp.RowStart[k+1]
		w := ke - kb
		unit := make([]float64, w)
		addrs := make([]string, w)
		sum := 0.0
		for t := 0; t < w; t++ {
			v := vk[kb+t]
			if v < 0 {
				v = 0
			}
			unit[t] = v
			addrs[t] = infos[redSp.ColIdx[kb+t]].Addr
			sum += v
		}
		if sum > 0 {
			for t := range unit {
				unit[t] /= sum
			}
		} else if w > 0 {
			for t := range unit {
				unit[t] = 1 / float64(w)
			}
		}
		body := CohortAllocationBody{
			Round:      round,
			Algorithm:  r.cfg.Algorithm.String(),
			Iterations: iterations,
			Replicas:   addrs,
			UnitMB:     unit,
		}
		msg, err := r.newMessage(MsgCohortAllocation, body)
		if err != nil {
			continue // msgs[k].Type stays empty → members fall back below
		}
		msgs[k], units[k], reps[k] = msg, unit, addrs
	}
	_ = engine.FanOut(ctx, len(clientAddrs), func(ctx context.Context, i int) error {
		k := g.CohortOf(i)
		if msgs[k].Type != "" {
			if _, err := r.sendMsgRetry(ctx, clientAddrs[i], msgs[k]); err == nil {
				return nil
			} else if ctx.Err() != nil {
				return nil
			}
		}
		// Legacy fallback: reconstruct this member's per-replica map the
		// same way the cohort-aware client would.
		per := make(map[string]float64, len(reps[k]))
		for t, addr := range reps[k] {
			if v := units[k][t] * g.Orig().Demands[i]; v > 0 {
				per[addr] = v
			}
		}
		body := AllocationBody{
			Round:        round,
			PerReplicaMB: per,
			Algorithm:    r.cfg.Algorithm.String(),
			Iterations:   iterations,
		}
		_, _ = r.sendRetry(ctx, clientAddrs[i], MsgAllocation, body)
		return nil
	})
}
