package core

import (
	"context"
	"math"
	"testing"
	"time"

	"edr/internal/model"
	"edr/internal/opt"
	"edr/internal/transport"
)

func TestCDPSMRoundSurvivesReplicaFailure(t *testing.T) {
	f := newFleet(t, []float64{1, 4, 9}, 2, CDPSM)
	ctx := context.Background()
	for _, cl := range f.clients {
		if err := cl.Submit(ctx, f.replicas[0].Addr(), 25, f.uniformLatencies()); err != nil {
			t.Fatal(err)
		}
	}
	f.net.Crash(f.replicas[1].Addr())
	report, err := f.replicas[0].RunRound(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if report.Restarts == 0 {
		t.Fatal("no restart recorded after CDPSM member failure")
	}
	if len(report.ReplicaAddrs) != 2 {
		t.Fatalf("round used %d replicas, want 2 survivors", len(report.ReplicaAddrs))
	}
	rows := opt.RowSums(report.Assignment)
	for i, r := range rows {
		if math.Abs(r-25) > 0.2 {
			t.Fatalf("client %d served %g, want 25", i, r)
		}
	}
}

func TestRoundSurvivesClientFailureAfterSubmit(t *testing.T) {
	// A client that dies after submitting must not poison the round for
	// the others: μ updates to it fail, which aborts LDDM for that round —
	// but the dead client is not a ring member, so the round error
	// surfaces rather than deadlocks. With CDPSM (no client participation
	// in the iteration), the round completes and only the dead client's
	// allocation notification is lost.
	f := newFleet(t, []float64{1, 5}, 2, CDPSM)
	ctx := context.Background()
	for _, cl := range f.clients {
		if err := cl.Submit(ctx, f.replicas[0].Addr(), 15, f.uniformLatencies()); err != nil {
			t.Fatal(err)
		}
	}
	f.net.Crash(f.clients[1].Addr())
	report, err := f.replicas[0].RunRound(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// The surviving client still gets its allocation.
	wctx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	if _, err := f.clients[0].WaitAllocation(wctx); err != nil {
		t.Fatal(err)
	}
	if len(report.ClientAddrs) != 2 {
		t.Fatalf("round dropped a client row: %v", report.ClientAddrs)
	}
}

func TestLDDMRoundClientFailureSurfacesError(t *testing.T) {
	f := newFleet(t, []float64{1, 5}, 2, LDDM)
	ctx := context.Background()
	for _, cl := range f.clients {
		if err := cl.Submit(ctx, f.replicas[0].Addr(), 15, f.uniformLatencies()); err != nil {
			t.Fatal(err)
		}
	}
	f.net.Crash(f.clients[1].Addr())
	if _, err := f.replicas[0].RunRound(ctx); err == nil {
		t.Fatal("LDDM round succeeded despite a dead μ-owning client")
	}
}

func TestConsecutiveRoundsIndependent(t *testing.T) {
	f := newFleet(t, []float64{2, 7}, 1, LDDM)
	ctx := context.Background()
	for round := 1; round <= 3; round++ {
		if err := f.clients[0].Submit(ctx, f.replicas[0].Addr(), float64(10*round), f.uniformLatencies()); err != nil {
			t.Fatal(err)
		}
		report, err := f.replicas[0].RunRound(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if report.Round != round {
			t.Fatalf("round id = %d, want %d", report.Round, round)
		}
		rows := opt.RowSums(report.Assignment)
		if math.Abs(rows[0]-float64(10*round)) > 0.1 {
			t.Fatalf("round %d served %g, want %d", round, rows[0], 10*round)
		}
		wctx, cancel := context.WithTimeout(ctx, time.Second)
		alloc, err := f.clients[0].WaitAllocation(wctx)
		cancel()
		if err != nil {
			t.Fatal(err)
		}
		if alloc.Round != round {
			t.Fatalf("allocation round = %d, want %d", alloc.Round, round)
		}
	}
}

func TestRoundStatsAccounting(t *testing.T) {
	f := newFleet(t, []float64{1, 3}, 2, LDDM)
	ctx := context.Background()
	for _, cl := range f.clients {
		if err := cl.Submit(ctx, f.replicas[0].Addr(), 20, f.uniformLatencies()); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.replicas[0].RunRound(ctx); err != nil {
		t.Fatal(err)
	}
	init := &f.replicas[0].Stats
	if init.RequestsReceived.Value() != 2 {
		t.Fatalf("RequestsReceived = %d", init.RequestsReceived.Value())
	}
	if init.RoundsInitiated.Value() != 1 {
		t.Fatalf("RoundsInitiated = %d", init.RoundsInitiated.Value())
	}
	if init.CoordMessages.Value() == 0 {
		t.Fatal("initiator sent no coordination messages")
	}
	// Download accounting.
	for _, cl := range f.clients {
		wctx, cancel := context.WithTimeout(ctx, time.Second)
		alloc, err := cl.WaitAllocation(wctx)
		cancel()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Download(ctx, alloc); err != nil {
			t.Fatal(err)
		}
	}
	served := int64(0)
	for _, rs := range f.replicas {
		served += rs.Stats.DownloadsServed.Value()
	}
	if served == 0 {
		t.Fatal("no downloads served")
	}
}

func TestDownloadPayloadScale(t *testing.T) {
	net := transport.NewInProcNetwork()
	names := []string{"ra", "rb"}
	cfg := ReplicaConfig{
		Replica:    modelReplica(1),
		Algorithm:  LDDM,
		BytesPerMB: 10, // tiny scale for the test
	}
	ra, err := NewReplicaServer(net, "ra", names, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ra.Close()
	cfgB := cfg
	cfgB.Replica = modelReplica(5)
	rb, err := NewReplicaServer(net, "rb", names, cfgB)
	if err != nil {
		t.Fatal(err)
	}
	defer rb.Close()
	cl, err := NewClient(net, "c")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()
	lat := map[string]float64{"ra": 0.0005, "rb": 0.0005}
	if err := cl.Submit(ctx, "ra", 12, lat); err != nil {
		t.Fatal(err)
	}
	if _, err := ra.RunRound(ctx); err != nil {
		t.Fatal(err)
	}
	alloc, err := cl.WaitAllocation(ctx)
	if err != nil {
		t.Fatal(err)
	}
	n, err := cl.Download(ctx, alloc)
	if err != nil {
		t.Fatal(err)
	}
	// 12 MB at 10 bytes/MB ≈ 120 bytes (± rounding per replica split).
	if n < 100 || n > 130 {
		t.Fatalf("payload = %d bytes, want ≈120 at 10 B/MB", n)
	}
}

func TestReplicaRejectsUnknownMessageType(t *testing.T) {
	f := newFleet(t, []float64{1}, 1, LDDM)
	node, err := f.net.Listen("prober", func(ctx context.Context, m transport.Message) (transport.Message, error) {
		return transport.Message{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	_, err = node.Send(context.Background(), f.replicas[0].Addr(), transport.Message{Type: "bogus.type"})
	if err == nil {
		t.Fatal("bogus message type accepted")
	}
}

func TestClientRejectsUnknownMessageType(t *testing.T) {
	f := newFleet(t, []float64{1}, 1, LDDM)
	node, err := f.net.Listen("prober", func(ctx context.Context, m transport.Message) (transport.Message, error) {
		return transport.Message{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	if _, err := node.Send(context.Background(), f.clients[0].Addr(), transport.Message{Type: "bogus"}); err == nil {
		t.Fatal("bogus message type accepted by client")
	}
}

func TestPingMeasuresLatency(t *testing.T) {
	f := newFleet(t, []float64{1}, 1, LDDM)
	d, err := f.clients[0].Ping(context.Background(), f.replicas[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	if d < 0 {
		t.Fatalf("negative latency %v", d)
	}
	if _, err := f.clients[0].Ping(context.Background(), "ghost"); err == nil {
		t.Fatal("ping to ghost succeeded")
	}
}

// modelReplica builds a minimal valid replica for config tests.
func modelReplica(price float64) model.Replica {
	return model.NewReplica("r", price)
}
