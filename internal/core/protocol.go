// Package core is the EDR runtime: the replica server with its
// ClientListener / ReplicaListener / FileDownload roles, the client
// library, and the distributed scheduling rounds that run the LDDM and
// CDPSM iterations over real message passing (paper §III-B/C).
//
// A scheduling round works as follows. Clients submit requests (demand +
// measured latencies) to any replica. The replica holding pending requests
// initiates a round: it collects every ring member's model parameters,
// builds the optimization instance, and drives synchronous algorithm
// iterations over the fabric — for LDDM, each replica solves its local
// water-filling problem and each *client* updates its own multiplier μ_c
// (exactly the division of labor in Algorithm 2); for CDPSM, each replica
// keeps a full-solution estimate and exchanges it with every other replica
// each iteration (Algorithm 1). The final assignment is installed on the
// replicas and pushed to the clients, which then download their bytes from
// the selected replicas in parallel. Replica failures at any point are
// handled by the ring monitor: the dead member is pruned, survivors are
// notified, and the round restarts on the new ring.
package core

// Message types of the EDR wire protocol.
const (
	// MsgClientRequest is client → replica: submit a demand.
	MsgClientRequest = "client.request"
	// MsgReplicaInfo is initiator → replica: fetch model parameters.
	MsgReplicaInfo = "replica.info"
	// MsgRoundStart is initiator → replica: install a round's problem.
	MsgRoundStart = "round.start"
	// MsgLocalSolve is initiator → replica: run one LDDM local solve.
	MsgLocalSolve = "replica.localsolve"
	// MsgMuUpdate is initiator → client: apply one multiplier update.
	MsgMuUpdate = "client.muupdate"
	// MsgADMMProx is initiator → replica: solve one ADMM proximal
	// subproblem against the shipped target.
	MsgADMMProx = "replica.admm.prox"
	// MsgCDPSMStep is initiator → replica: compute one consensus step.
	MsgCDPSMStep = "replica.cdpsm.step"
	// MsgCDPSMEstimate is replica → replica: fetch a peer's committed
	// estimate.
	MsgCDPSMEstimate = "replica.cdpsm.estimate"
	// MsgCDPSMCommit is initiator → replica: commit the pending estimate.
	MsgCDPSMCommit = "replica.cdpsm.commit"
	// MsgAssign is initiator → replica: install the final assignment.
	MsgAssign = "replica.assign"
	// MsgAllocation is initiator → client: deliver the final allocation.
	MsgAllocation = "client.allocation"
	// MsgDownload is client → replica: fetch the selected bytes.
	MsgDownload = "download.request"
)

// ReplicaInfo carries one replica's energy-model parameters (Table I) to
// the round initiator.
type ReplicaInfo struct {
	Addr      string  `json:"addr"`
	Price     float64 `json:"price"`
	Alpha     float64 `json:"alpha"`
	Beta      float64 `json:"beta"`
	Gamma     float64 `json:"gamma"`
	Bandwidth float64 `json:"bandwidth"`
}

// RequestBody is the client.request payload.
type RequestBody struct {
	// ClientAddr is the client's transport address (for μ updates,
	// allocation delivery).
	ClientAddr string `json:"client_addr"`
	// DemandMB is R_c for this request.
	DemandMB float64 `json:"demand_mb"`
	// LatencySec maps replica address → measured one-way latency.
	LatencySec map[string]float64 `json:"latency_sec"`
}

// RequestAck acknowledges a submission.
type RequestAck struct {
	// Accepted reports queue admission.
	Accepted bool `json:"accepted"`
	// Pending is the initiator's queue depth after admission.
	Pending int `json:"pending"`
}

// RoundSpec ships the full problem of one round to every replica.
type RoundSpec struct {
	// Round is the initiator-local round number.
	Round int `json:"round"`
	// Replicas lists the participating replicas in column order.
	Replicas []ReplicaInfo `json:"replicas"`
	// ClientAddrs lists the participating clients in row order.
	ClientAddrs []string `json:"client_addrs"`
	// Demands holds R_c per client (row order).
	Demands []float64 `json:"demands"`
	// LatencySec is the client×replica latency matrix.
	LatencySec [][]float64 `json:"latency_sec"`
	// MaxLatencySec is T.
	MaxLatencySec float64 `json:"max_latency_sec"`
}

// LocalSolveBody asks a replica for one LDDM local solution.
type LocalSolveBody struct {
	Round int       `json:"round"`
	Iter  int       `json:"iter"`
	Mu    []float64 `json:"mu"`
}

// LocalSolveReply returns the replica's column {p_{c,n}}.
type LocalSolveReply struct {
	Column []float64 `json:"column"`
}

// MuUpdateBody asks a client to update its multiplier (Algorithm 2,
// line 6: the update task "is assigned to the clients").
type MuUpdateBody struct {
	Round    int     `json:"round"`
	Iter     int     `json:"iter"`
	ServedMB float64 `json:"served_mb"`
	DemandMB float64 `json:"demand_mb"`
	Step     float64 `json:"step"`
}

// MuUpdateReply returns the client's new μ_c.
type MuUpdateReply struct {
	Mu float64 `json:"mu"`
}

// ADMMProxBody asks a replica for one proximal solve (see internal/admm):
// the replica minimizes E_n(Σz) + (ρ/2)‖z − Target‖² over its local set.
type ADMMProxBody struct {
	Round  int       `json:"round"`
	Iter   int       `json:"iter"`
	Rho    float64   `json:"rho"`
	Target []float64 `json:"target"`
}

// ADMMProxReply returns the proximal column.
type ADMMProxReply struct {
	Column []float64 `json:"column"`
}

// CDPSMStepBody asks a replica to run one consensus step: fetch all peer
// estimates, average, take the local gradient step, project, and stage the
// result (uncommitted).
type CDPSMStepBody struct {
	Round int     `json:"round"`
	Iter  int     `json:"iter"`
	Step  float64 `json:"step"`
}

// CDPSMStepReply reports how far the staged estimate moved.
type CDPSMStepReply struct {
	Moved float64 `json:"moved"`
}

// CDPSMEstimateBody fetches a peer's committed estimate for a round.
type CDPSMEstimateBody struct {
	Round int `json:"round"`
}

// CDPSMEstimateReply carries the flattened estimate (row-major C×N).
type CDPSMEstimateReply struct {
	Estimate [][]float64 `json:"estimate"`
}

// CDPSMCommitBody promotes the staged estimate to committed.
type CDPSMCommitBody struct {
	Round int `json:"round"`
	Iter  int `json:"iter"`
}

// AssignBody installs the final per-replica serving plan.
type AssignBody struct {
	Round int `json:"round"`
	// Column[c] is the MB this replica serves to client c (row order of
	// the round spec).
	Column []float64 `json:"column"`
	// ClientAddrs mirrors the round spec's row order.
	ClientAddrs []string `json:"client_addrs"`
}

// AllocationBody tells a client how its demand was split.
type AllocationBody struct {
	Round int `json:"round"`
	// PerReplicaMB maps replica address → MB to download from it.
	PerReplicaMB map[string]float64 `json:"per_replica_mb"`
	// Algorithm names the method that produced the split.
	Algorithm string `json:"algorithm"`
	// Iterations is how many distributed iterations the round ran.
	Iterations int `json:"iterations"`
}

// DownloadBody requests bytes from a replica.
type DownloadBody struct {
	Round  int     `json:"round"`
	SizeMB float64 `json:"size_mb"`
}

// DownloadReply carries the (scale-reduced) payload.
type DownloadReply struct {
	// Payload is synthetic content, BytesPerMB per requested MB.
	Payload []byte `json:"payload"`
}
