// Package core is the EDR runtime: the replica server with its
// ClientListener / ReplicaListener / FileDownload roles, the client
// library, and the distributed scheduling rounds that run the LDDM and
// CDPSM iterations over real message passing (paper §III-B/C).
//
// A scheduling round works as follows. Clients submit requests (demand +
// measured latencies) to any replica. The replica holding pending requests
// initiates a round: it collects every ring member's model parameters,
// builds the optimization instance, and drives synchronous algorithm
// iterations over the fabric — for LDDM, each replica solves its local
// water-filling problem and each *client* updates its own multiplier μ_c
// (exactly the division of labor in Algorithm 2); for CDPSM, each replica
// keeps a full-solution estimate and exchanges it with every other replica
// each iteration (Algorithm 1). The final assignment is installed on the
// replicas and pushed to the clients, which then download their bytes from
// the selected replicas in parallel. Replica failures at any point are
// handled by the ring monitor: the dead member is pruned, survivors are
// notified, and the round restarts on the new ring.
package core

import (
	"edr/internal/admm"
	"edr/internal/cdpsm"
	"edr/internal/engine"
	"edr/internal/lddm"
)

// Message types of the EDR wire protocol owned by the runtime itself.
// The per-algorithm iteration verbs live with their algorithm packages
// (the engine registry routes them to the right server half); they are
// aliased below so this package's wire documentation stays complete and
// historical names keep compiling.
const (
	// MsgClientRequest is client → replica: submit a demand.
	MsgClientRequest = "client.request"
	// MsgReplicaInfo is initiator → replica: fetch model parameters.
	MsgReplicaInfo = "replica.info"
	// MsgRoundStart is initiator → replica: install a round's problem.
	MsgRoundStart = "round.start"
	// MsgAssign is initiator → replica: install the final assignment.
	MsgAssign = "replica.assign"
	// MsgAllocation is initiator → client: deliver the final allocation.
	MsgAllocation = "client.allocation"
	// MsgCohortAllocation is initiator → client on cohorted rounds: deliver
	// the client's cohort-level allocation (shared per-unit split + member
	// demands) in one message built once per cohort. Clients that do not
	// know the verb reject it and receive the legacy MsgAllocation instead.
	MsgCohortAllocation = "client.allocation.cohort"
	// MsgAllocationPull is client → initiator: fetch the caller's row of
	// the last committed round. Change-suppressed rounds deliberately skip
	// the allocation push for clients whose split did not move, which is
	// right for a persistent client (it keeps serving its last allocation)
	// but starves a one-shot client that re-submitted and is waiting for
	// an answer. Such a client polls this verb until the reply's Round
	// passes the watermark its submission ack reported.
	MsgAllocationPull = "client.allocation.pull"
	// MsgCohortDuals is initiator → client on cohorted rounds (opt-in via
	// ReplicaConfig.CohortDuals): deliver the cohort's final dual μ to
	// every member, not just the representative the iteration protocol
	// routed through. Clients that do not know the verb reject it and
	// receive a legacy μ-update reproducing the same value instead.
	MsgCohortDuals = "client.duals.cohort"
	// MsgDownload is client → replica: fetch the selected bytes.
	MsgDownload = "download.request"
)

// Algorithm-owned verbs (see the respective packages for semantics).
const (
	MsgLocalSolve    = lddm.MsgLocalSolve
	MsgMuUpdate      = engine.MsgMuUpdate
	MsgADMMProx      = admm.MsgProx
	MsgCDPSMStep     = cdpsm.MsgStep
	MsgCDPSMEstimate = cdpsm.MsgEstimate
	MsgCDPSMCommit   = cdpsm.MsgCommit
)

// Algorithm-owned wire bodies, aliased under their historical names.
type (
	LocalSolveBody     = lddm.SolveBody
	LocalSolveReply    = lddm.SolveReply
	MuUpdateBody       = engine.MuUpdateBody
	MuUpdateReply      = engine.MuUpdateReply
	ADMMProxBody       = admm.ProxBody
	ADMMProxReply      = admm.ProxReply
	CDPSMStepBody      = cdpsm.StepBody
	CDPSMStepReply     = cdpsm.StepReply
	CDPSMEstimateBody  = cdpsm.EstimateBody
	CDPSMEstimateReply = cdpsm.EstimateReply
	CDPSMCommitBody    = cdpsm.CommitBody
)

// ReplicaInfo carries one replica's energy-model parameters (Table I) to
// the round initiator.
type ReplicaInfo struct {
	Addr      string  `json:"addr"`
	Price     float64 `json:"price"`
	Alpha     float64 `json:"alpha"`
	Beta      float64 `json:"beta"`
	Gamma     float64 `json:"gamma"`
	Bandwidth float64 `json:"bandwidth"`
	// BaseMB is frozen load already committed to this replica by rows
	// outside the round's problem. Replicas report 0; the initiator sets
	// it on incremental sub-rounds, where Bandwidth carries the residual
	// capacity and the energy model must be evaluated at BaseMB + load
	// (see model.Replica.Base). Omitted on the wire when zero, so full
	// rounds are byte-identical to pre-incremental builds.
	BaseMB float64 `json:"base_mb,omitempty"`
}

// RequestBody is the client.request payload.
type RequestBody struct {
	// ClientAddr is the client's transport address (for μ updates,
	// allocation delivery).
	ClientAddr string `json:"client_addr"`
	// DemandMB is R_c for this request.
	DemandMB float64 `json:"demand_mb"`
	// LatencySec maps replica address → measured one-way latency.
	LatencySec map[string]float64 `json:"latency_sec"`
}

// RequestAck acknowledges a submission.
type RequestAck struct {
	// Accepted reports queue admission.
	Accepted bool `json:"accepted"`
	// Pending is the initiator's queue depth after admission.
	Pending int `json:"pending"`
	// Round is the highest round id that does NOT cover this submission:
	// the initiator's round sequence at admission. The queue drains into a
	// round under the same lock that admitted this request, so the first
	// committed round with id beyond this watermark includes the caller —
	// poll MsgAllocationPull until the reply passes it.
	Round int `json:"round,omitempty"`
}

// PullBody asks the initiator for the caller's committed allocation row.
type PullBody struct {
	ClientAddr string `json:"client_addr"`
}

// RoundSpec ships the full problem of one round to every replica.
type RoundSpec struct {
	// Round is the initiator-local round number.
	Round int `json:"round"`
	// Replicas lists the participating replicas in column order.
	Replicas []ReplicaInfo `json:"replicas"`
	// ClientAddrs lists the participating clients in row order.
	ClientAddrs []string `json:"client_addrs"`
	// Demands holds R_c per client (row order).
	Demands []float64 `json:"demands"`
	// LatencySec is the client×replica latency matrix.
	LatencySec [][]float64 `json:"latency_sec"`
	// MaxLatencySec is T.
	MaxLatencySec float64 `json:"max_latency_sec"`
	// RawClients, when positive, reports that the spec's rows are cohorts
	// (virtual clients) aggregated from this many raw clients; the
	// initiator disaggregates the result before installing it. Purely
	// informational for participants — the iteration protocol is
	// row-granularity-agnostic.
	RawClients int `json:"raw_clients,omitempty"`
	// Warm, when present, is the initiator's warm-start assignment
	// (clients × replicas, same row/column order as the spec): the
	// last-known-good split renormalized over this round's roster.
	// Participants seed full-solution estimates from it (CDPSM); the
	// initiator seeds its own primal iterate (ADMM) from the same matrix.
	Warm [][]float64 `json:"warm,omitempty"`
}

// AssignBody installs the final per-replica serving plan. Two forms:
// the full form carries the replica's whole column (Column/ClientAddrs),
// while the delta form (BaseRound > 0) tells the replica to start from
// the plan it installed for BaseRound and apply only Updates — the
// incremental path's change-suppressed install, which shrinks the
// steady-state fan-out from O(|C|) to O(dirty). A replica holding no
// state for BaseRound rejects the delta, failing the round into its
// usual restart/escalation path; the initiator only sends deltas against
// a round it installed on every member, so that means the member lost
// state (restart) and the full solve re-seeds it.
type AssignBody struct {
	Round int `json:"round"`
	// Column[c] is the MB this replica serves to client c (row order of
	// the round spec). Empty in the delta form.
	Column []float64 `json:"column"`
	// ClientAddrs mirrors the round spec's row order. Empty in the delta
	// form.
	ClientAddrs []string `json:"client_addrs"`
	// BaseRound selects the delta form: the already-installed round whose
	// plan this round starts from.
	BaseRound int `json:"base_round,omitempty"`
	// Updates maps client address → MB for every entry that differs from
	// the base plan; a non-positive value removes the client.
	Updates map[string]float64 `json:"updates,omitempty"`
}

// AllocationBody tells a client how its demand was split.
type AllocationBody struct {
	Round int `json:"round"`
	// PerReplicaMB maps replica address → MB to download from it.
	PerReplicaMB map[string]float64 `json:"per_replica_mb"`
	// Algorithm names the method that produced the split.
	Algorithm string `json:"algorithm"`
	// Iterations is how many distributed iterations the round ran.
	Iterations int `json:"iterations"`
}

// CohortAllocationBody is the batched form of AllocationBody for cohorted
// rounds: one body, built and marshaled once per cohort, is delivered to
// every member. A member reconstructs its own split as UnitMB[t]·R_c on
// Replicas[t] with R_c its own submitted demand — cohort members share a
// feasibility mask and latency class, so the per-unit split is common by
// construction and only the demand scale is per-member. The body is
// therefore O(feasible replicas), independent of cohort population.
type CohortAllocationBody struct {
	Round int `json:"round"`
	// Algorithm and Iterations mirror AllocationBody.
	Algorithm  string `json:"algorithm"`
	Iterations int    `json:"iterations"`
	// Replicas lists the cohort's feasible replica addresses.
	Replicas []string `json:"replicas"`
	// UnitMB[t] is the fraction of a member's demand served by Replicas[t]
	// (sums to 1 when the cohort carries load).
	UnitMB []float64 `json:"unit_mb"`
}

// CohortDualsBody delivers a cohort's final dual to one member. μ is a
// per-unit congestion price shared by every member of a cohort (they are
// interchangeable rows of the transportation polytope), so one scalar per
// member suffices and the body is built once per cohort.
type CohortDualsBody struct {
	Round int `json:"round"`
	// Mu is the cohort's final multiplier μ for this round.
	Mu float64 `json:"mu"`
}

// DownloadBody requests bytes from a replica.
type DownloadBody struct {
	Round  int     `json:"round"`
	SizeMB float64 `json:"size_mb"`
}

// DownloadReply carries the (scale-reduced) payload.
type DownloadReply struct {
	// Payload is synthetic content, BytesPerMB per requested MB.
	Payload []byte `json:"payload"`
}
