package core

import (
	"context"
	"fmt"
	"testing"

	"edr/internal/transport"
)

// rawSeq disambiguates prober node names across sendRaw calls.
var rawSeq int

// sendRaw delivers an arbitrary message to a fleet member.
func sendRaw(t *testing.T, f *fleet, to string, msgType string, body any) (transport.Message, error) {
	t.Helper()
	rawSeq++
	name := fmt.Sprintf("raw-%d-%s", rawSeq, msgType)
	node, err := f.net.Listen(name, func(ctx context.Context, m transport.Message) (transport.Message, error) {
		return transport.Message{Type: "ok"}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { node.Close() })
	msg, err := transport.NewMessage(msgType, node.Name(), body)
	if err != nil {
		t.Fatal(err)
	}
	return node.Send(context.Background(), to, msg)
}

func TestProtocolRejectsMalformedBodies(t *testing.T) {
	f := newFleet(t, []float64{1, 2}, 1, LDDM)
	addr := f.replicas[0].Addr()
	cases := []struct {
		msgType string
		body    any
	}{
		{MsgClientRequest, "not an object"},
		{MsgClientRequest, RequestBody{}},                 // empty addr/demand
		{MsgClientRequest, RequestBody{ClientAddr: "x"}},  // zero demand
		{MsgRoundStart, "garbage"},                        // undecodable
		{MsgRoundStart, RoundSpec{Round: 1}},              // empty spec
		{MsgLocalSolve, LocalSolveBody{Round: 99}},        // unknown round
		{MsgCDPSMStep, CDPSMStepBody{Round: 99}},          // unknown round
		{MsgCDPSMEstimate, CDPSMEstimateBody{Round: 99}},  // unknown round
		{MsgCDPSMCommit, CDPSMCommitBody{Round: 99}},      // unknown round
		{MsgAssign, AssignBody{Round: 99}},                // unknown round
		{MsgDownload, DownloadBody{Round: 1, SizeMB: -5}}, // negative size
		{MsgAllocation, nil},                              // replicas don't take allocations
	}
	for _, tc := range cases {
		if _, err := sendRaw(t, f, addr, tc.msgType, tc.body); err == nil {
			t.Errorf("%s with body %v accepted", tc.msgType, tc.body)
		}
	}
}

func TestCDPSMCommitWithoutStageRejected(t *testing.T) {
	f := newFleet(t, []float64{1, 2}, 1, CDPSM)
	ctx := context.Background()
	if err := f.clients[0].Submit(ctx, f.replicas[0].Addr(), 10, f.uniformLatencies()); err != nil {
		t.Fatal(err)
	}
	// Run a legitimate round so round 1 state exists on replica 2.
	if _, err := f.replicas[0].RunRound(ctx); err != nil {
		t.Fatal(err)
	}
	// A commit for an iteration that staged nothing must fail.
	if _, err := sendRaw(t, f, f.replicas[1].Addr(), MsgCDPSMCommit, CDPSMCommitBody{Round: 1, Iter: 99}); err == nil {
		t.Error("commit without staged estimate accepted")
	}
}

func TestLocalSolveMultiplierLengthChecked(t *testing.T) {
	f := newFleet(t, []float64{1, 2}, 2, LDDM)
	ctx := context.Background()
	for _, cl := range f.clients {
		if err := cl.Submit(ctx, f.replicas[0].Addr(), 10, f.uniformLatencies()); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.replicas[0].RunRound(ctx); err != nil {
		t.Fatal(err)
	}
	// Round 1 had two clients; a 1-multiplier solve must be rejected.
	body := LocalSolveBody{Round: 1, Iter: 1, Mu: []float64{0}}
	if _, err := sendRaw(t, f, f.replicas[1].Addr(), MsgLocalSolve, body); err == nil {
		t.Error("short multiplier vector accepted")
	}
}

func TestSpecProblemRejectsBadSpecs(t *testing.T) {
	good := RoundSpec{
		Round: 1,
		Replicas: []ReplicaInfo{
			{Addr: "a", Price: 1, Alpha: 1, Beta: 0.01, Gamma: 3, Bandwidth: 100},
		},
		ClientAddrs:   []string{"c1"},
		Demands:       []float64{10},
		LatencySec:    [][]float64{{0.0005}},
		MaxLatencySec: 0.0018,
	}
	if _, err := specProblem(&good); err != nil {
		t.Fatal(err)
	}

	bad := good
	bad.Replicas = nil
	if _, err := specProblem(&bad); err == nil {
		t.Error("empty replica list accepted")
	}

	bad = good
	bad.Demands = []float64{-1}
	if _, err := specProblem(&bad); err == nil {
		t.Error("negative demand accepted")
	}

	bad = good
	bad.Replicas = []ReplicaInfo{{Addr: "a", Price: 1, Alpha: 1, Beta: 0.01, Gamma: 0.5, Bandwidth: 100}}
	if _, err := specProblem(&bad); err == nil {
		t.Error("gamma < 1 accepted")
	}

	bad = good
	bad.MaxLatencySec = 0
	if _, err := specProblem(&bad); err == nil {
		t.Error("zero latency bound accepted")
	}
}

func TestPlanUnknownRound(t *testing.T) {
	f := newFleet(t, []float64{1}, 1, LDDM)
	if got := f.replicas[0].Plan(42, "nobody"); got != 0 {
		t.Fatalf("Plan(unknown) = %g", got)
	}
}

func TestRoundStartForUnlistedReplicaRejected(t *testing.T) {
	f := newFleet(t, []float64{1, 2}, 1, LDDM)
	spec := RoundSpec{
		Round: 7,
		Replicas: []ReplicaInfo{
			{Addr: "someone-else", Price: 1, Alpha: 1, Beta: 0.01, Gamma: 3, Bandwidth: 100},
		},
		ClientAddrs:   []string{"c1"},
		Demands:       []float64{10},
		LatencySec:    [][]float64{{0.0005}},
		MaxLatencySec: 0.0018,
	}
	if _, err := sendRaw(t, f, f.replicas[0].Addr(), MsgRoundStart, spec); err == nil {
		t.Error("round start without this replica in the column list accepted")
	}
}
