package core

import (
	"context"
	"sync"
	"testing"
	"time"

	"edr/internal/model"
	"edr/internal/telemetry"
	"edr/internal/transport"
)

// busRecorder collects events with a lock (handlers run on publisher
// goroutines).
type busRecorder struct {
	mu     sync.Mutex
	events []telemetry.Event
}

func (r *busRecorder) handle(e telemetry.Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

func (r *busRecorder) snapshot() []telemetry.Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]telemetry.Event(nil), r.events...)
}

// newTelemetryFleet is newFleet with a telemetry bus on every replica.
func newTelemetryFleet(t *testing.T, prices []float64, nClients int, alg Algorithm, bus *telemetry.Bus) *fleet {
	t.Helper()
	f := &fleet{net: transport.NewInProcNetwork()}
	names := make([]string, len(prices))
	for i := range prices {
		names[i] = replicaName(i)
	}
	for i, price := range prices {
		cfg := ReplicaConfig{
			Replica:   model.NewReplica(replicaName(i), price),
			Algorithm: alg,
			Telemetry: bus,
		}
		rs, err := NewReplicaServer(f.net, replicaName(i), names, cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { rs.Close() })
		f.replicas = append(f.replicas, rs)
	}
	for i := 0; i < nClients; i++ {
		cl, err := NewClient(f.net, clientName(i))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cl.Close() })
		f.clients = append(f.clients, cl)
	}
	return f
}

func TestRoundPublishesCompletedEventWithTrajectory(t *testing.T) {
	bus := telemetry.NewBus()
	rec := &busRecorder{}
	defer bus.Subscribe(rec.handle)()
	f := newTelemetryFleet(t, []float64{1, 6}, 2, LDDM, bus)
	ctx := context.Background()
	for _, cl := range f.clients {
		if err := cl.Submit(ctx, f.replicas[0].Addr(), 20, f.uniformLatencies()); err != nil {
			t.Fatal(err)
		}
	}
	report, err := f.replicas[0].RunRound(ctx)
	if err != nil {
		t.Fatal(err)
	}

	var completed *telemetry.RoundCompleted
	for _, e := range rec.snapshot() {
		if ev, ok := e.(telemetry.RoundCompleted); ok {
			completed = &ev
		}
	}
	if completed == nil {
		t.Fatal("no RoundCompleted event published")
	}
	if completed.Round != report.Round || completed.Algorithm != "LDDM" {
		t.Fatalf("event = %+v, report = %+v", completed, report)
	}
	if completed.Clients != 2 || completed.Replicas != 2 {
		t.Fatalf("participants = %d/%d, want 2/2", completed.Clients, completed.Replicas)
	}
	if completed.Duration <= 0 {
		t.Fatal("round duration not stamped")
	}
	// With an active bus the LDDM driver records per-iteration
	// trajectories, one entry per iteration.
	if len(completed.Residuals) != report.Iterations {
		t.Fatalf("residual trajectory has %d entries for %d iterations",
			len(completed.Residuals), report.Iterations)
	}
	if len(completed.Costs) != report.Iterations {
		t.Fatalf("cost trajectory has %d entries for %d iterations",
			len(completed.Costs), report.Iterations)
	}

	// The same report is retained for the admin plane.
	st := f.replicas[0].Status()
	if st.LastRound == nil || st.LastRound.Round != report.Round {
		t.Fatalf("Status.LastRound = %+v, want round %d", st.LastRound, report.Round)
	}
	if st.Degraded {
		t.Fatal("healthy round flagged degraded in status")
	}
	if len(st.Ring) != 2 || st.RoundsInitiated != 1 {
		t.Fatalf("status = %+v", st)
	}
}

func TestUnobservedRoundRecordsNoTrajectory(t *testing.T) {
	// Without a bus (or with a bus nobody subscribed to) the round must
	// not spend time on trajectories — the zero-overhead contract.
	f := newFleet(t, []float64{1, 6}, 1, LDDM)
	ctx := context.Background()
	if err := f.clients[0].Submit(ctx, f.replicas[0].Addr(), 20, f.uniformLatencies()); err != nil {
		t.Fatal(err)
	}
	report, err := f.replicas[0].RunRound(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Residuals) != 0 || len(report.Costs) != 0 {
		t.Fatalf("unobserved round recorded trajectories: %d/%d entries",
			len(report.Residuals), len(report.Costs))
	}
}

func TestDegradedRoundPublishesDegradedEvents(t *testing.T) {
	bus := telemetry.NewBus()
	rec := &busRecorder{}
	defer bus.Subscribe(rec.handle)()
	net := transport.NewInProcNetwork()
	names := []string{"ra", "rb"}
	mk := func(name string, price float64) *ReplicaServer {
		rs, err := NewReplicaServer(net, name, names, ReplicaConfig{
			Replica:      model.NewReplica(name, price),
			Algorithm:    LDDM,
			Telemetry:    bus,
			SendRetries:  -1,
			RoundRetries: -1,
			RPCTimeout:   200 * time.Millisecond, // fail fast on the crashed peer
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { rs.Close() })
		return rs
	}
	ra, _ := mk("ra", 1), mk("rb", 6)
	cl, err := NewClient(net, "c1")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()
	lat := map[string]float64{"ra": 0.0005, "rb": 0.0005}

	// Round 1 succeeds and becomes the last-known-good assignment.
	if err := cl.Submit(ctx, "ra", 10, lat); err != nil {
		t.Fatal(err)
	}
	if _, err := ra.RunRound(ctx); err != nil {
		t.Fatal(err)
	}
	// Round 2: rb is gone and no retries are allowed → degraded fallback.
	net.Crash("rb")
	if err := cl.Submit(ctx, "ra", 10, lat); err != nil {
		t.Fatal(err)
	}
	report, err := ra.RunRound(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Degraded {
		t.Fatal("round did not degrade")
	}

	var completedDegraded, degradedEvent bool
	for _, e := range rec.snapshot() {
		switch ev := e.(type) {
		case telemetry.RoundCompleted:
			if ev.Degraded {
				completedDegraded = true
			}
		case telemetry.RoundDegraded:
			if ev.FailedMember != "rb" {
				t.Fatalf("RoundDegraded.FailedMember = %q, want rb", ev.FailedMember)
			}
			degradedEvent = true
		}
	}
	if !completedDegraded || !degradedEvent {
		t.Fatalf("degraded events missing: completed=%v degraded=%v", completedDegraded, degradedEvent)
	}
	if st := ra.Status(); !st.Degraded {
		t.Fatal("status does not flag the degraded round")
	}
}
