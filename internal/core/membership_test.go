package core

import (
	"context"
	"math"
	"testing"

	"edr/internal/membership"
	"edr/internal/model"
	"edr/internal/opt"
	"edr/internal/transport"
)

// elasticFleet is a fleet whose replica configs the test can tweak and
// which holds one extra replica ("replica4") born outside the cluster,
// ready to join mid-stream.
type elasticFleet struct {
	*fleet
	joiner *ReplicaServer
}

func newElasticFleet(t *testing.T, alg Algorithm, tweak func(*ReplicaConfig)) *elasticFleet {
	t.Helper()
	f := &elasticFleet{fleet: &fleet{net: transport.NewInProcNetwork()}}
	prices := []float64{1, 10, 5}
	names := make([]string, len(prices))
	for i := range prices {
		names[i] = replicaName(i)
	}
	for i, price := range prices {
		cfg := ReplicaConfig{
			Replica:   model.NewReplica(replicaName(i), price),
			Algorithm: alg,
		}
		if tweak != nil {
			tweak(&cfg)
		}
		rs, err := NewReplicaServer(f.net, replicaName(i), names, cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { rs.Close() })
		f.replicas = append(f.replicas, rs)
	}
	jcfg := ReplicaConfig{
		Replica:   model.NewReplica(replicaName(3), 3),
		Algorithm: alg,
	}
	if tweak != nil {
		tweak(&jcfg)
	}
	joiner, err := NewReplicaServer(f.net, replicaName(3), nil, jcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { joiner.Close() })
	f.joiner = joiner
	for i := 0; i < 2; i++ {
		cl, err := NewClient(f.net, clientName(i))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cl.Close() })
		f.clients = append(f.clients, cl)
	}
	return f
}

// allLatencies covers the joiner too, so clients are feasible against
// whatever roster a round ends up with.
func (f *elasticFleet) allLatencies() map[string]float64 {
	m := f.uniformLatencies()
	m[f.joiner.Addr()] = 0.0005
	return m
}

func (f *elasticFleet) submitAll(t *testing.T, demands []float64) {
	t.Helper()
	ctx := context.Background()
	for i, cl := range f.clients {
		if err := cl.Submit(ctx, f.replicas[0].Addr(), demands[i], f.allLatencies()); err != nil {
			t.Fatal(err)
		}
	}
}

// runElasticSequence drives the acceptance scenario: one cold round on
// {replica1..3}, then replica4 joins and replica3 drains, then three more
// rounds on the new roster. It returns the four reports.
func runElasticSequence(t *testing.T, alg Algorithm, cold bool) []*RoundReport {
	t.Helper()
	f := newElasticFleet(t, alg, func(cfg *ReplicaConfig) { cfg.ColdStart = cold })
	ctx := context.Background()
	demands := []float64{30, 20}

	var reports []*RoundReport
	runOne := func() *RoundReport {
		t.Helper()
		f.submitAll(t, demands)
		report, err := f.replicas[0].RunRound(ctx)
		if err != nil {
			t.Fatalf("round %d: %v", len(reports)+1, err)
		}
		reports = append(reports, report)
		return report
	}
	runOne()

	// Live reconfiguration between rounds: replica4 joins through the
	// initiator, replica3 drains (planned power-down, not a failure).
	if _, err := f.joiner.Membership().JoinVia(ctx, f.replicas[0].Addr()); err != nil {
		t.Fatalf("join: %v", err)
	}
	if _, err := f.replicas[0].Membership().ProposeChange(ctx, membership.OpDrain, f.replicas[2].Addr()); err != nil {
		t.Fatalf("drain: %v", err)
	}

	for i := 0; i < 3; i++ {
		runOne()
	}
	return reports
}

// TestElasticMembershipMidStream is the tentpole acceptance test: a
// replica joins and another drains between rounds, and the stream keeps
// scheduling — three consecutive post-change rounds, none failed, none
// degraded, every one warm-started from the pre-change assignment.
func TestElasticMembershipMidStream(t *testing.T) {
	for _, alg := range []Algorithm{CDPSM, ADMM} {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			reports := runElasticSequence(t, alg, false)
			if reports[0].WarmStarted {
				t.Fatal("first round had no history to warm from")
			}
			first := reports[0]
			wantOld := map[string]bool{"replica1": true, "replica2": true, "replica3": true}
			for _, addr := range first.ReplicaAddrs {
				if !wantOld[addr] {
					t.Fatalf("pre-change roster has %s", addr)
				}
			}
			for i, report := range reports[1:] {
				if report.Degraded {
					t.Fatalf("post-change round %d degraded", i+2)
				}
				if !report.WarmStarted {
					t.Fatalf("post-change round %d not warm-started", i+2)
				}
				// New roster: replica4 in, drained replica3 out.
				want := map[string]bool{"replica1": true, "replica2": true, "replica4": true}
				if len(report.ReplicaAddrs) != len(want) {
					t.Fatalf("round %d roster %v", i+2, report.ReplicaAddrs)
				}
				for _, addr := range report.ReplicaAddrs {
					if !want[addr] {
						t.Fatalf("round %d roster %v", i+2, report.ReplicaAddrs)
					}
				}
				// Demand stays fully assigned through the reconfiguration.
				for _, row := range opt.RowSums(report.Assignment) {
					if math.Abs(row-30) > 1e-3 && math.Abs(row-20) > 1e-3 {
						t.Fatalf("round %d row sum %g, want 30 or 20", i+2, row)
					}
				}
			}
		})
	}
}

// TestWarmStartBeatsColdAfterEpochChange asserts the warm start earns its
// keep: the first post-change round converges in strictly fewer
// distributed iterations than the identical sequence run with ColdStart.
func TestWarmStartBeatsColdAfterEpochChange(t *testing.T) {
	for _, alg := range []Algorithm{CDPSM, ADMM} {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			warm := runElasticSequence(t, alg, false)
			cold := runElasticSequence(t, alg, true)
			if warm[1].Iterations >= cold[1].Iterations {
				t.Fatalf("post-change round: warm %d iterations, cold %d — warm start bought nothing",
					warm[1].Iterations, cold[1].Iterations)
			}
			t.Logf("%s post-change round: warm %d iterations vs cold %d", alg, warm[1].Iterations, cold[1].Iterations)
		})
	}
}

// TestDrainedReplicaStaysInRing asserts drain is not death: with the
// drained member crashed off the fabric, heartbeats walk past it and no
// monitor ever declares it dead or shrinks the ring.
func TestDrainedReplicaStaysInRing(t *testing.T) {
	f := newElasticFleet(t, CDPSM, nil)
	ctx := context.Background()
	if _, err := f.replicas[0].Membership().ProposeChange(ctx, membership.OpDrain, f.replicas[2].Addr()); err != nil {
		t.Fatal(err)
	}
	f.net.Crash(f.replicas[2].Addr())
	for i := 0; i < 6; i++ {
		for _, rs := range f.replicas[:2] {
			rs.Monitor().Beat()
		}
	}
	for _, rs := range f.replicas[:2] {
		if !rs.Ring().Contains(f.replicas[2].Addr()) {
			t.Fatalf("%s pruned the drained member", rs.Addr())
		}
		if suspect, misses := rs.Monitor().Suspicion(); suspect == f.replicas[2].Addr() && misses > 0 {
			t.Fatalf("%s suspects the drained member (%d misses)", rs.Addr(), misses)
		}
	}
	// And the drained member shows up in /status.
	st := f.replicas[0].Status()
	if st.Epoch == 0 || len(st.Drained) != 1 || st.Drained[0] != f.replicas[2].Addr() {
		t.Fatalf("status epoch %d drained %v", st.Epoch, st.Drained)
	}
}

// TestAutoScaleHysteresis drives the energy-aware policy through a full
// down/up cycle on a live fleet: sustained low utilization drains the
// priciest replica (after DownAfter windows, not the first), sustained
// high utilization powers it back up, and a single crossing in between
// moves nothing.
func TestAutoScaleHysteresis(t *testing.T) {
	f := newElasticFleet(t, LDDM, nil)
	ctx := context.Background()
	policy := &membership.Policy{DownAfter: 2, UpAfter: 2, Cooldown: -1}
	priciest := f.replicas[1].Addr() // price 10

	runWindow := func(demands []float64) (membership.Decision, bool) {
		t.Helper()
		f.submitAll(t, demands)
		if _, err := f.replicas[0].RunRound(ctx); err != nil {
			t.Fatal(err)
		}
		d, applied, err := f.replicas[0].AutoScale(ctx, policy)
		if err != nil {
			t.Fatal(err)
		}
		return d, applied
	}

	// Window 1: cold fleet, low load (50 MB over 300 MB capacity = 0.17).
	// One low window must NOT trigger — that is the hysteresis.
	if d, applied := runWindow([]float64{30, 20}); applied || d.Action != membership.Hold {
		t.Fatalf("one low window already acted: %+v", d)
	}
	if f.replicas[0].Membership().IsDrained(priciest) {
		t.Fatal("drained after a single low window")
	}
	// Window 2: second consecutive low window crosses DownAfter and
	// drains the priciest active member.
	d, applied := runWindow([]float64{30, 20})
	if !applied || d.Action != membership.PowerDown || d.Target != priciest {
		t.Fatalf("second low window: %+v (applied %v), want power-down of %s", d, applied, priciest)
	}
	if !f.replicas[0].Membership().IsDrained(priciest) {
		t.Fatal("power-down not applied to the epoch")
	}

	// Windows 3-4: high load over the shrunken fleet (170 MB over 200 MB
	// active capacity = 0.85). First high window holds, second powers the
	// drained member back up — and it is the cheapest (only) drained one.
	if d, applied := runWindow([]float64{100, 70}); applied || d.Action != membership.Hold {
		t.Fatalf("one high window already acted: %+v", d)
	}
	d, applied = runWindow([]float64{100, 70})
	if !applied || d.Action != membership.PowerUp || d.Target != priciest {
		t.Fatalf("second high window: %+v (applied %v), want power-up of %s", d, applied, priciest)
	}
	if f.replicas[0].Membership().IsDrained(priciest) {
		t.Fatal("power-up not applied to the epoch")
	}

	// Comfort-band window: nothing moves, streaks reset.
	if d, applied := runWindow([]float64{100, 70}); applied {
		t.Fatalf("comfort-band window acted: %+v", d)
	}
}
