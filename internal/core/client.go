package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"edr/internal/metrics"
	"edr/internal/transport"
)

// Client is the EDR client library: it submits requests to a contact
// replica, participates in LDDM rounds by owning its multiplier μ_c
// (Algorithm 2 assigns the update task to the clients), receives its final
// allocation, and downloads the selected bytes from each chosen replica in
// parallel — the paper's "the client side will create new threads to
// communicate with all the replicas at the same time".
type Client struct {
	node transport.Node

	mu      sync.Mutex
	mus     map[string]float64 // multiplier per (initiator, round)
	demand  float64            // last submitted demand, for cohort allocations
	contact string             // last contact replica, for allocation pulls
	ackSeq  int                // RequestAck.Round watermark of the last submission
	alloc   chan AllocationBody

	// Stats counts client activity.
	Stats ClientStats
}

// ClientStats aggregates client-side counters.
type ClientStats struct {
	MuUpdates     metrics.Counter
	Allocations   metrics.Counter
	BytesReceived metrics.Counter
}

// NewClient binds a client endpoint on the network.
func NewClient(network transport.Network, addr string) (*Client, error) {
	c := &Client{
		mus:   make(map[string]float64),
		alloc: make(chan AllocationBody, 64),
	}
	node, err := network.Listen(addr, c.handle)
	if err != nil {
		return nil, err
	}
	c.node = node
	return c, nil
}

// Addr returns the client's transport address.
func (c *Client) Addr() string { return c.node.Name() }

// Close releases the endpoint.
func (c *Client) Close() error { return c.node.Close() }

func (c *Client) handle(ctx context.Context, req transport.Message) (transport.Message, error) {
	switch req.Type {
	case MsgMuUpdate:
		return c.handleMuUpdate(req)
	case MsgAllocation:
		return c.handleAllocation(req)
	case MsgCohortAllocation:
		return c.handleCohortAllocation(req)
	case MsgCohortDuals:
		return c.handleCohortDuals(req)
	default:
		return transport.Message{}, fmt.Errorf("core: client %s: unknown message type %q", c.Addr(), req.Type)
	}
}

// handleMuUpdate applies μ_c ← μ_c + d·(served − R_c) for one round.
func (c *Client) handleMuUpdate(req transport.Message) (transport.Message, error) {
	var body MuUpdateBody
	if err := req.DecodeBody(&body); err != nil {
		return transport.Message{}, err
	}
	key := fmt.Sprintf("%s/%d", req.From, body.Round)
	c.mu.Lock()
	mu := c.mus[key]
	mu += body.Step * (body.ServedMB - body.DemandMB)
	c.mus[key] = mu
	c.mu.Unlock()
	c.Stats.MuUpdates.Inc(1)
	return transport.NewReply(req, MsgMuUpdate+".ack", c.Addr(), MuUpdateReply{Mu: mu})
}

// handleAllocation records the round outcome for WaitAllocation.
func (c *Client) handleAllocation(req transport.Message) (transport.Message, error) {
	var body AllocationBody
	if err := req.DecodeBody(&body); err != nil {
		return transport.Message{}, err
	}
	c.Stats.Allocations.Inc(1)
	select {
	case c.alloc <- body:
	default:
		// Drop rather than block the initiator: a client that stopped
		// consuming allocations should not stall the fleet.
	}
	return transport.NewMessage(MsgAllocation+".ack", c.Addr(), nil)
}

// handleCohortDuals installs the cohort's final dual as this client's μ
// for the round. The value is absolute, not a step: non-representative
// members never receive in-round μ-updates, so the cohort's price simply
// replaces whatever (zero) accumulator the round key holds.
func (c *Client) handleCohortDuals(req transport.Message) (transport.Message, error) {
	var body CohortDualsBody
	if err := req.DecodeBody(&body); err != nil {
		return transport.Message{}, err
	}
	key := fmt.Sprintf("%s/%d", req.From, body.Round)
	c.mu.Lock()
	c.mus[key] = body.Mu
	c.mu.Unlock()
	c.Stats.MuUpdates.Inc(1)
	return transport.NewReply(req, MsgCohortDuals+".ack", c.Addr(), MuUpdateReply{Mu: body.Mu})
}

// handleCohortAllocation expands a cohort-level allocation into this
// client's own per-replica split (unit share × own demand) and records it
// like a legacy allocation — WaitAllocation callers see no difference.
// The demand is the client's own last-submitted figure: cohort members
// split cohort load proportionally to demand, so the unit vector times
// R_c reproduces the member row the initiator installed (a client that
// re-submits a different demand mid-round sees one transiently scaled
// allocation; the next round solves with the new figure).
func (c *Client) handleCohortAllocation(req transport.Message) (transport.Message, error) {
	var body CohortAllocationBody
	if err := req.DecodeBody(&body); err != nil {
		return transport.Message{}, err
	}
	if len(body.UnitMB) != len(body.Replicas) {
		return transport.Message{}, fmt.Errorf("core: client %s: %d unit entries for %d replicas",
			c.Addr(), len(body.UnitMB), len(body.Replicas))
	}
	c.mu.Lock()
	demand := c.demand
	c.mu.Unlock()
	per := make(map[string]float64, len(body.Replicas))
	for t, addr := range body.Replicas {
		if v := body.UnitMB[t] * demand; v > 0 {
			per[addr] = v
		}
	}
	alloc := AllocationBody{
		Round:        body.Round,
		PerReplicaMB: per,
		Algorithm:    body.Algorithm,
		Iterations:   body.Iterations,
	}
	c.Stats.Allocations.Inc(1)
	select {
	case c.alloc <- alloc:
	default:
		// Drop rather than block the initiator, as with legacy allocations.
	}
	return transport.NewMessage(MsgAllocation+".ack", c.Addr(), nil)
}

// Ping measures the round-trip time to a replica by timing a
// replica.info exchange, returning the estimated one-way latency. Clients
// use it to build the latency map Submit requires, mirroring the paper's
// clients measuring their own network view.
func (c *Client) Ping(ctx context.Context, replicaAddr string) (time.Duration, error) {
	req, err := transport.NewMessage(MsgReplicaInfo, c.Addr(), nil)
	if err != nil {
		return 0, err
	}
	start := time.Now()
	if _, err := c.node.Send(ctx, replicaAddr, req); err != nil {
		return 0, fmt.Errorf("core: ping %s: %w", replicaAddr, err)
	}
	return time.Since(start) / 2, nil
}

// Submit sends one request to the contact replica. latencies maps replica
// address → measured one-way latency seconds (the client's view of the
// network); replicas absent from the map are not candidates.
func (c *Client) Submit(ctx context.Context, contactReplica string, demandMB float64, latencies map[string]float64) error {
	c.mu.Lock()
	c.demand = demandMB
	c.mu.Unlock()
	body := RequestBody{ClientAddr: c.Addr(), DemandMB: demandMB, LatencySec: latencies}
	req, err := transport.NewMessage(MsgClientRequest, c.Addr(), body)
	if err != nil {
		return err
	}
	resp, err := c.node.Send(ctx, contactReplica, req)
	if err != nil {
		return fmt.Errorf("core: submit to %s: %w", contactReplica, err)
	}
	var ack RequestAck
	if err := resp.DecodeBody(&ack); err != nil {
		return err
	}
	if !ack.Accepted {
		return fmt.Errorf("core: replica %s rejected request", contactReplica)
	}
	c.mu.Lock()
	c.contact = contactReplica
	c.ackSeq = ack.Round
	c.mu.Unlock()
	return nil
}

// WaitAllocation blocks until the next allocation arrives or ctx ends.
func (c *Client) WaitAllocation(ctx context.Context) (AllocationBody, error) {
	select {
	case body := <-c.alloc:
		return body, nil
	case <-ctx.Done():
		return AllocationBody{}, ctx.Err()
	}
}

// WaitAllocationSteady waits for an allocation push but also polls the last
// contact's committed round (MsgAllocationPull). Against a fleet running
// change-suppressed rounds (`edrd -incremental`) no push arrives when the
// caller's split did not move, so a one-shot client must pull its row. A
// pulled row is accepted only when the committed round passed the
// submission's RequestAck.Round watermark AND the row's mass matches the
// submitted demand — a round that drained the queue just before this
// submission can commit past the watermark without covering it, and the
// demand check rejects the stale row it would hand back (identical-demand
// staleness is indistinguishable and harmless: the row is the same).
func (c *Client) WaitAllocationSteady(ctx context.Context, poll time.Duration) (AllocationBody, error) {
	c.mu.Lock()
	contact, ackSeq, demand := c.contact, c.ackSeq, c.demand
	c.mu.Unlock()
	if contact == "" {
		return c.WaitAllocation(ctx)
	}
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	for {
		select {
		case body := <-c.alloc:
			return body, nil
		case <-ctx.Done():
			return AllocationBody{}, ctx.Err()
		case <-ticker.C:
			req, err := transport.NewMessage(MsgAllocationPull, c.Addr(), PullBody{ClientAddr: c.Addr()})
			if err != nil {
				return AllocationBody{}, err
			}
			resp, err := c.node.Send(ctx, contact, req)
			if err != nil {
				continue // the push path may still deliver; keep waiting
			}
			var body AllocationBody
			if err := resp.DecodeBody(&body); err != nil || body.Round <= ackSeq || len(body.PerReplicaMB) == 0 {
				continue
			}
			var sum float64
			for _, mb := range body.PerReplicaMB {
				sum += mb
			}
			if diff := sum - demand; diff > 1e-3*demand || diff < -1e-3*demand {
				continue
			}
			return body, nil
		}
	}
}

// Download fetches the allocated bytes from every selected replica in
// parallel and returns the total payload size received.
func (c *Client) Download(ctx context.Context, alloc AllocationBody) (int, error) {
	type result struct {
		n   int
		err error
	}
	results := make(chan result, len(alloc.PerReplicaMB))
	for addr, sizeMB := range alloc.PerReplicaMB {
		go func(addr string, sizeMB float64) {
			req, err := transport.NewMessage(MsgDownload, c.Addr(), DownloadBody{Round: alloc.Round, SizeMB: sizeMB})
			if err != nil {
				results <- result{err: err}
				return
			}
			resp, err := c.node.Send(ctx, addr, req)
			if err != nil {
				results <- result{err: fmt.Errorf("core: download from %s: %w", addr, err)}
				return
			}
			var reply DownloadReply
			if err := resp.DecodeBody(&reply); err != nil {
				results <- result{err: err}
				return
			}
			results <- result{n: len(reply.Payload)}
		}(addr, sizeMB)
	}
	total := 0
	var firstErr error
	for range alloc.PerReplicaMB {
		res := <-results
		if res.err != nil && firstErr == nil {
			firstErr = res.err
		}
		total += res.n
	}
	c.Stats.BytesReceived.Inc(int64(total))
	return total, firstErr
}
