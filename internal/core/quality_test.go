package core

import (
	"context"
	"testing"

	"edr/internal/central"
	"edr/internal/model"
	"edr/internal/opt"
)

// rebuildProblem reconstructs the optimization instance a test fleet's
// round solved, so the live result can be scored against a reference.
func rebuildProblem(t *testing.T, prices []float64, report *RoundReport, demandOf map[string]float64) *opt.Problem {
	t.Helper()
	replicas := make([]model.Replica, len(report.ReplicaAddrs))
	// Fleet replicas are named replica<i>; recover each column's price by
	// matching addresses against creation order names.
	for j, addr := range report.ReplicaAddrs {
		var price float64
		found := false
		for i := range prices {
			if replicaName(i) == addr {
				price = prices[i]
				found = true
			}
		}
		if !found {
			t.Fatalf("unknown replica address %q", addr)
		}
		replicas[j] = model.NewReplica(addr, price)
	}
	sys, err := model.NewSystem(replicas)
	if err != nil {
		t.Fatal(err)
	}
	demands := make([]float64, len(report.ClientAddrs))
	lat := opt.NewMatrix(len(report.ClientAddrs), len(replicas))
	for i, addr := range report.ClientAddrs {
		d, ok := demandOf[addr]
		if !ok {
			t.Fatalf("unknown client address %q", addr)
		}
		demands[i] = d
		for j := range replicas {
			lat[i][j] = 0.0005
		}
	}
	return &opt.Problem{System: sys, Demands: demands, Latency: lat, MaxLatency: 0.0018}
}

// The live message-passing LDDM round must land within a few percent of
// the Frank-Wolfe reference optimum on the same instance — the end-to-end
// correctness check tying the runtime to the optimization theory.
func TestLiveLDDMRoundNearOptimal(t *testing.T) {
	prices := []float64{1, 9, 4}
	f := newFleet(t, prices, 4, LDDM)
	// Raise the live iteration budget for reference-grade quality.
	for _, rs := range f.replicas {
		rs.cfg.MaxIters = 800
		rs.cfg.Tol = 0.005
	}
	ctx := context.Background()
	demandOf := map[string]float64{}
	for i, cl := range f.clients {
		d := float64(15 + 10*i)
		demandOf[cl.Addr()] = d
		if err := cl.Submit(ctx, f.replicas[0].Addr(), d, f.uniformLatencies()); err != nil {
			t.Fatal(err)
		}
	}
	report, err := f.replicas[0].RunRound(ctx)
	if err != nil {
		t.Fatal(err)
	}
	prob := rebuildProblem(t, prices, report, demandOf)
	if v := prob.Violation(report.Assignment); v > 1e-4 {
		t.Fatalf("live assignment violates rebuilt instance by %g", v)
	}
	ref, err := central.NewFrankWolfe().Solve(prob)
	if err != nil {
		t.Fatal(err)
	}
	liveCost := prob.Cost(report.Assignment)
	if liveCost > ref.Objective*1.05+1e-6 {
		t.Fatalf("live LDDM %.2f vs reference %.2f (>5%% gap)", liveCost, ref.Objective)
	}
	// The report's own objective must agree with the rebuilt instance.
	if rel := (report.Objective - liveCost) / liveCost; rel > 1e-6 || rel < -1e-6 {
		t.Fatalf("report objective %.4f vs rebuilt %.4f", report.Objective, liveCost)
	}
}

// Same check for the live CDPSM round.
func TestLiveCDPSMRoundNearOptimal(t *testing.T) {
	prices := []float64{2, 7, 3}
	f := newFleet(t, prices, 3, CDPSM)
	for _, rs := range f.replicas {
		rs.cfg.MaxIters = 400
		rs.cfg.Tol = 1e-4
	}
	ctx := context.Background()
	demandOf := map[string]float64{}
	for i, cl := range f.clients {
		d := float64(20 + 5*i)
		demandOf[cl.Addr()] = d
		if err := cl.Submit(ctx, f.replicas[0].Addr(), d, f.uniformLatencies()); err != nil {
			t.Fatal(err)
		}
	}
	report, err := f.replicas[0].RunRound(ctx)
	if err != nil {
		t.Fatal(err)
	}
	prob := rebuildProblem(t, prices, report, demandOf)
	ref, err := central.NewFrankWolfe().Solve(prob)
	if err != nil {
		t.Fatal(err)
	}
	liveCost := prob.Cost(report.Assignment)
	if liveCost > ref.Objective*1.06+1e-6 {
		t.Fatalf("live CDPSM %.2f vs reference %.2f (>6%% gap)", liveCost, ref.Objective)
	}
}

// The live ADMM round must also verify against the Frank-Wolfe reference.
func TestLiveADMMRoundNearOptimal(t *testing.T) {
	prices := []float64{1, 9, 4}
	f := newFleet(t, prices, 4, ADMM)
	for _, rs := range f.replicas {
		rs.cfg.MaxIters = 300
		rs.cfg.Tol = 1e-4
	}
	ctx := context.Background()
	demandOf := map[string]float64{}
	for i, cl := range f.clients {
		d := float64(15 + 10*i)
		demandOf[cl.Addr()] = d
		if err := cl.Submit(ctx, f.replicas[0].Addr(), d, f.uniformLatencies()); err != nil {
			t.Fatal(err)
		}
	}
	report, err := f.replicas[0].RunRound(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if report.Algorithm != "ADMM" {
		t.Fatalf("algorithm = %q", report.Algorithm)
	}
	prob := rebuildProblem(t, prices, report, demandOf)
	if v := prob.Violation(report.Assignment); v > 1e-4 {
		t.Fatalf("live ADMM assignment violates rebuilt instance by %g", v)
	}
	ref, err := central.NewFrankWolfe().Solve(prob)
	if err != nil {
		t.Fatal(err)
	}
	liveCost := prob.Cost(report.Assignment)
	if liveCost > ref.Objective*1.05+1e-6 {
		t.Fatalf("live ADMM %.2f vs reference %.2f (>5%% gap)", liveCost, ref.Objective)
	}
	// Clients participated in the dual updates.
	if f.clients[0].Stats.MuUpdates.Value() == 0 {
		t.Fatal("clients never updated the ADMM dual")
	}
}
