package core

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"edr/internal/membership"
	"edr/internal/model"
	"edr/internal/opt"
	"edr/internal/transport"
)

// chaosFleet is a test deployment on a fault-injection fabric.
type chaosFleet struct {
	net      *transport.FaultyNetwork
	names    []string
	replicas []*ReplicaServer
	clients  []*Client

	mu     sync.Mutex
	deaths []string // every OnFailure firing across the fleet
}

func newChaosFleet(t *testing.T, prices []float64, nClients int, seed uint64, tweak func(*ReplicaConfig)) *chaosFleet {
	t.Helper()
	f := &chaosFleet{net: transport.NewFaultyNetwork(transport.NewInProcNetwork(), seed)}
	for i := range prices {
		f.names = append(f.names, "r"+string(rune('1'+i)))
	}
	for i, price := range prices {
		cfg := ReplicaConfig{
			Replica:   model.NewReplica(f.names[i], price),
			Algorithm: LDDM,
		}
		if tweak != nil {
			tweak(&cfg)
		}
		rs, err := NewReplicaServer(f.net, f.names[i], f.names, cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { rs.Close() })
		rs.Monitor().Interval = 20 * time.Millisecond
		rs.Monitor().Timeout = 10 * time.Millisecond
		rs.Monitor().OnFailure = func(dead string) {
			f.mu.Lock()
			f.deaths = append(f.deaths, dead)
			f.mu.Unlock()
		}
		f.replicas = append(f.replicas, rs)
	}
	for i := 0; i < nClients; i++ {
		cl, err := NewClient(f.net, "c"+string(rune('1'+i)))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cl.Close() })
		f.clients = append(f.clients, cl)
	}
	return f
}

func (f *chaosFleet) latencies() map[string]float64 {
	m := make(map[string]float64, len(f.names))
	for _, n := range f.names {
		m[n] = 0.0005
	}
	return m
}

// submit retries a client submission: on a lossy fabric the submit RPC
// itself can be dropped.
func (f *chaosFleet) submit(t *testing.T, cl *Client, demand float64) {
	t.Helper()
	ctx := context.Background()
	var err error
	for attempt := 0; attempt < 8; attempt++ {
		sctx, cancel := context.WithTimeout(ctx, 100*time.Millisecond)
		err = cl.Submit(sctx, f.names[0], demand, f.latencies())
		cancel()
		if err == nil {
			return
		}
	}
	t.Fatalf("submit from %s never got through: %v", cl.Addr(), err)
}

func (f *chaosFleet) beatAll() {
	for _, rs := range f.replicas {
		rs.Monitor().Beat()
	}
}

func (f *chaosFleet) deathList() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.deaths...)
}

// TestChaosSoak runs scheduling rounds under 2% per-link loss, latency
// jitter, and one staged partition, asserting the tentpole's contract:
// every round completes (possibly degraded), demand is always fully
// assigned, transient faults below the suspicion threshold never shrink
// the ring, and Degraded is reported exactly when the fallback ran.
func TestChaosSoak(t *testing.T) {
	for _, alg := range []Algorithm{LDDM, CDPSM} {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			chaosSoak(t, alg)
		})
	}
}

func chaosSoak(t *testing.T, alg Algorithm) {
	f := newChaosFleet(t, []float64{1, 3, 5, 7, 9}, 2, 0xED12, func(cfg *ReplicaConfig) {
		cfg.Algorithm = alg
		cfg.MaxIters = 40
		cfg.RPCTimeout = 40 * time.Millisecond
		cfg.SendRetries = 4
		cfg.RetryBase = 2 * time.Millisecond
		// No round restarts: coordination failures degrade instead of
		// pruning members, so a transient partition costs staleness, not
		// a false death.
		cfg.RoundRetries = -1
	})
	demands := map[string]float64{"c1": 30, "c2": 20}

	// Background loss and latency jitter on every link.
	f.net.SetDefault(transport.Faults{Drop: 0.02, Jitter: 200 * time.Microsecond})

	const partitionRound = 4
	initiator := f.replicas[0]
	degradedRounds := 0
	for round := 1; round <= 6; round++ {
		if round == partitionRound {
			// Stage the outage: r5 is cut off from the rest of the fleet
			// in both directions, mid-schedule.
			f.net.Partition([]string{"r5"}, []string{"r1", "r2", "r3", "r4"})
		}
		for _, cl := range f.clients {
			f.submit(t, cl, demands[cl.Addr()])
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		report, err := initiator.RunRound(ctx)
		cancel()
		if err != nil {
			t.Fatalf("round %d failed outright under chaos: %v", round, err)
		}
		if report.Degraded {
			degradedRounds++
		}

		// Demand conservation: every client's demand fully assigned.
		rows := opt.RowSums(report.Assignment)
		for i, addr := range report.ClientAddrs {
			want := demands[addr]
			if math.Abs(rows[i]-want) > 0.2 {
				t.Fatalf("round %d: client %s served %g, want %g", round, addr, rows[i], want)
			}
		}

		if round == partitionRound {
			if !report.Degraded {
				t.Fatalf("round %d ran through a full partition without degrading", round)
			}
			for _, addr := range report.ReplicaAddrs {
				if addr == "r5" {
					t.Fatal("degraded round assigned load to the unreachable replica")
				}
			}
		}

		// Heartbeats between rounds: during the partition only two beats
		// fire — below the suspicion threshold of three.
		f.beatAll()
		if round == partitionRound {
			f.beatAll()
			f.net.Heal()
		}

		// Every client receives its allocation, degraded rounds included.
		for _, cl := range f.clients {
			wctx, wcancel := context.WithTimeout(context.Background(), 10*time.Second)
			alloc, err := cl.WaitAllocation(wctx)
			wcancel()
			if err != nil {
				t.Fatalf("round %d: client %s never got its allocation: %v", round, cl.Addr(), err)
			}
			total := 0.0
			for _, mb := range alloc.PerReplicaMB {
				total += mb
			}
			if math.Abs(total-demands[cl.Addr()]) > 0.2 {
				t.Fatalf("round %d: allocation for %s totals %g, want %g", round, cl.Addr(), total, demands[cl.Addr()])
			}
		}
	}

	if degradedRounds == 0 {
		t.Fatal("staged partition never produced a degraded round")
	}
	if got := initiator.Stats.RoundsDegraded.Value(); got != int64(degradedRounds) {
		t.Fatalf("RoundsDegraded = %d but %d reports had Degraded set", got, degradedRounds)
	}
	if initiator.Stats.SendRetried.Value() == 0 {
		t.Fatal("2% loss produced zero RPC retries — retry path untested")
	}

	// Zero false member deaths: the loss and the sub-threshold partition
	// must leave every membership view intact.
	if got := f.deathList(); len(got) != 0 {
		t.Fatalf("false member deaths under transient faults: %v", got)
	}
	for _, rs := range f.replicas {
		if rs.Ring().Len() != len(f.names) {
			t.Fatalf("%s ring shrank to %d under transient faults", rs.Addr(), rs.Ring().Len())
		}
	}
}

// TestDegradedRoundFallsBackToLastGood pins the degraded-round semantics
// without background noise: a healthy round, then a partition that
// outlasts the whole retry budget.
func TestDegradedRoundFallsBackToLastGood(t *testing.T) {
	f := newChaosFleet(t, []float64{1, 4, 9}, 2, 7, func(cfg *ReplicaConfig) {
		cfg.RPCTimeout = 30 * time.Millisecond
		cfg.SendRetries = 1
		cfg.RetryBase = time.Millisecond
		cfg.RoundRetries = -1
	})
	ctx := context.Background()
	demands := map[string]float64{"c1": 24, "c2": 18}

	// Round 1: healthy, establishes the last-known-good assignment.
	for _, cl := range f.clients {
		f.submit(t, cl, demands[cl.Addr()])
	}
	report, err := f.replicas[0].RunRound(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if report.Degraded {
		t.Fatal("healthy round reported Degraded")
	}
	for _, cl := range f.clients {
		if _, err := cl.WaitAllocation(ctx); err != nil {
			t.Fatal(err)
		}
	}

	// Round 2: r3 is unreachable for the entire round.
	f.net.Partition([]string{"r3"}, []string{"r1", "r2"})
	for _, cl := range f.clients {
		f.submit(t, cl, demands[cl.Addr()])
	}
	report, err = f.replicas[0].RunRound(ctx)
	if err != nil {
		t.Fatalf("partitioned round should degrade, not fail: %v", err)
	}
	if !report.Degraded {
		t.Fatal("partitioned round did not report Degraded")
	}
	if len(report.ReplicaAddrs) != 2 {
		t.Fatalf("degraded round used replicas %v, want the 2 reachable ones", report.ReplicaAddrs)
	}
	for _, addr := range report.ReplicaAddrs {
		if addr == "r3" {
			t.Fatal("degraded round assigned load to the partitioned replica")
		}
	}
	rows := opt.RowSums(report.Assignment)
	for i, addr := range report.ClientAddrs {
		if math.Abs(rows[i]-demands[addr]) > 1e-6 {
			t.Fatalf("degraded round serves %s %g, want %g (renormalized)", addr, rows[i], demands[addr])
		}
	}
	// The unreachable member was NOT declared dead: the fault may be
	// transient, and pruning is what RoundRetries is for.
	for _, rs := range []*ReplicaServer{f.replicas[0], f.replicas[1]} {
		if !rs.Ring().Contains("r3") {
			t.Fatalf("%s pruned r3 for a transient partition", rs.Addr())
		}
	}
	// Clients were notified of the degraded allocation.
	for _, cl := range f.clients {
		wctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		alloc, err := cl.WaitAllocation(wctx)
		cancel()
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := alloc.PerReplicaMB["r3"]; ok {
			t.Fatal("degraded allocation points a client at the unreachable replica")
		}
	}

	// Round 3: the partition heals and scheduling fully recovers.
	f.net.Heal()
	for _, cl := range f.clients {
		f.submit(t, cl, demands[cl.Addr()])
	}
	report, err = f.replicas[0].RunRound(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if report.Degraded {
		t.Fatal("healed round still degraded")
	}
	if len(report.ReplicaAddrs) != 3 {
		t.Fatalf("healed round used %d replicas, want all 3", len(report.ReplicaAddrs))
	}
}

// TestDegradedRoundRequiresHistory: with no prior successful round there
// is nothing to fall back to, so the error surfaces.
func TestDegradedRoundRequiresHistory(t *testing.T) {
	f := newChaosFleet(t, []float64{1, 4}, 1, 7, func(cfg *ReplicaConfig) {
		cfg.RPCTimeout = 20 * time.Millisecond
		cfg.SendRetries = -1
		cfg.RoundRetries = -1
	})
	f.net.Partition([]string{"r2"}, []string{"r1"})
	f.submit(t, f.clients[0], 10)
	if _, err := f.replicas[0].RunRound(context.Background()); err == nil {
		t.Fatal("first-ever round succeeded despite an unreachable member and no fallback history")
	}
	if got := f.replicas[0].Stats.RoundsRestarted.Value(); got != 0 {
		t.Fatalf("RoundRetries -1 still restarted %d times", got)
	}
	if !f.replicas[0].Ring().Contains("r2") {
		t.Fatal("no-retry round pruned the member anyway")
	}
}

// TestSendRetriesSurviveLossBurst: a link that drops the first attempts
// recovers within the retry budget, so no member failure is attributed.
func TestSendRetriesSurviveLossBurst(t *testing.T) {
	f := newChaosFleet(t, []float64{1, 5}, 1, 21, func(cfg *ReplicaConfig) {
		cfg.RPCTimeout = 20 * time.Millisecond
		cfg.SendRetries = 6
		cfg.RetryBase = time.Millisecond
		cfg.MaxIters = -1 // projection-only round: a handful of RPCs
	})
	// 60% loss toward r2: with 7 attempts per RPC the chance a given RPC
	// exhausts its budget is ~3%, and the projection-only round only
	// sends a handful. The point: heavy transient loss costs retries, not
	// membership.
	f.net.SetLink("r1", "r2", transport.Faults{Drop: 0.6})
	f.submit(t, f.clients[0], 12)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	report, err := f.replicas[0].RunRound(ctx)
	if err != nil {
		t.Fatalf("round under loss burst failed: %v", err)
	}
	if report.Restarts != 0 && !report.Degraded {
		t.Fatalf("loss burst was attributed as member death (restarts=%d)", report.Restarts)
	}
	if f.replicas[0].Stats.SendRetried.Value() == 0 {
		t.Fatal("no retries recorded under 60% loss")
	}
	if !f.replicas[0].Ring().Contains("r2") {
		t.Fatal("lossy member was pruned")
	}
}

// TestFanOutCancelsStragglers: when one leg of a coordination wave fails
// fast, the black-holed legs must be cancelled rather than running out
// their full RPC timeouts (the fanOut goroutine-leak fix).
func TestFanOutCancelsStragglers(t *testing.T) {
	f := newChaosFleet(t, []float64{1, 3, 5, 7}, 1, 33, func(cfg *ReplicaConfig) {
		cfg.RPCTimeout = 3 * time.Second
		cfg.SendRetries = -1
		cfg.RoundRetries = -1
	})
	// r2 black-holes (would take the full 3s RPC timeout); r4 fails fast.
	f.submit(t, f.clients[0], 10)
	f.net.SetLink("r1", "r2", transport.Faults{Cut: true})
	f.net.Crash("r4")
	start := time.Now()
	_, err := f.replicas[0].RunRound(context.Background())
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("round succeeded with a crashed member and no fallback history")
	}
	if elapsed > time.Second {
		t.Fatalf("failed wave took %v — stragglers were not cancelled (RPCTimeout 3s)", elapsed)
	}
}

// TestRoundDeadlineNotAttributedToMembers: when the round's own context
// expires mid-wave, the failure belongs to the initiator's budget, not to
// whichever peers happened to have sends in flight — no member may be
// pruned, and the requests are re-queued for the next round to retry.
func TestRoundDeadlineNotAttributedToMembers(t *testing.T) {
	f := newChaosFleet(t, []float64{1, 4, 9}, 1, 5, func(cfg *ReplicaConfig) {
		cfg.RPCTimeout = 2 * time.Second
		cfg.SendRetries = -1
	})
	f.submit(t, f.clients[0], 10)
	// r2 black-holes, so the round is still waiting on it when the round
	// deadline (well under RPCTimeout) fires.
	f.net.SetLink("r1", "r2", transport.Faults{Cut: true})
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	_, err := f.replicas[0].RunRound(ctx)
	if err == nil {
		t.Fatal("round met a 150ms deadline while a member black-holed for 2s")
	}
	var fail *failedMemberError
	if asFailedMember(err, &fail) {
		t.Fatalf("round-deadline expiry was attributed to member %s", fail.addr)
	}
	if got := f.replicas[0].Stats.RoundsRestarted.Value(); got != 0 {
		t.Fatalf("deadline expiry triggered %d member-pruning restarts", got)
	}
	if !f.replicas[0].Ring().Contains("r2") {
		t.Fatal("live member pruned because the round ran out of time")
	}
	if got := f.replicas[0].PendingRequests(); got != 1 {
		t.Fatalf("failed round left %d pending requests, want the 1 re-queued", got)
	}
	// With the link healed the re-queued request schedules normally.
	f.net.ClearLink("r1", "r2")
	report, err := f.replicas[0].RunRound(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if report.Degraded || len(report.ReplicaAddrs) != 3 {
		t.Fatalf("recovered round: degraded=%v replicas=%v", report.Degraded, report.ReplicaAddrs)
	}
}

func TestConfigSentinels(t *testing.T) {
	def := (&ReplicaConfig{}).withDefaults()
	if def.RoundRetries != 3 || def.MaxIters != 200 || def.SendRetries != 2 {
		t.Fatalf("zero-value defaults = retries %d, iters %d, sendRetries %d", def.RoundRetries, def.MaxIters, def.SendRetries)
	}
	if def.RetryBase != 50*time.Millisecond {
		t.Fatalf("RetryBase default = %v", def.RetryBase)
	}
	none := (&ReplicaConfig{RoundRetries: -1, MaxIters: -1, SendRetries: -1}).withDefaults()
	if none.RoundRetries != 0 {
		t.Fatalf("RoundRetries -1 → %d, want literal 0", none.RoundRetries)
	}
	if none.MaxIters != 0 {
		t.Fatalf("MaxIters -1 → %d, want literal 0", none.MaxIters)
	}
	if none.SendRetries != 0 {
		t.Fatalf("SendRetries -1 → %d, want literal 0", none.SendRetries)
	}
	kept := (&ReplicaConfig{RoundRetries: 5, MaxIters: 80, SendRetries: 1}).withDefaults()
	if kept.RoundRetries != 5 || kept.MaxIters != 80 || kept.SendRetries != 1 {
		t.Fatalf("explicit values not preserved: %+v", kept)
	}
}

// TestChaosSoakWithChurn layers membership churn on the chaos soak: under
// the same 2% per-link loss and latency jitter, a replica drains mid-soak
// (planned power-down), survives a full partition while drained without
// ever being declared dead, and is powered back up — rounds keep
// completing with demand fully conserved throughout.
func TestChaosSoakWithChurn(t *testing.T) {
	f := newChaosFleet(t, []float64{1, 3, 5, 7, 9}, 2, 0xC0FFEE, func(cfg *ReplicaConfig) {
		cfg.Algorithm = CDPSM
		cfg.MaxIters = 40
		cfg.RPCTimeout = 40 * time.Millisecond
		cfg.SendRetries = 4
		cfg.RetryBase = 2 * time.Millisecond
		cfg.RoundRetries = -1
	})
	demands := map[string]float64{"c1": 30, "c2": 20}
	f.net.SetDefault(transport.Faults{Drop: 0.02, Jitter: 200 * time.Microsecond})

	initiator := f.replicas[0]
	// propose retries a membership change until it commits: on a lossy
	// fabric a dissemination can miss quorum, and re-proposing the same
	// logical change is idempotent by design.
	propose := func(op membership.Op, addr string) {
		t.Helper()
		var err error
		for attempt := 0; attempt < 8; attempt++ {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			_, err = initiator.Membership().ProposeChange(ctx, op, addr)
			cancel()
			if err == nil {
				return
			}
		}
		t.Fatalf("%s of %s never committed: %v", op, addr, err)
	}

	runRound := func(round int) *RoundReport {
		t.Helper()
		for _, cl := range f.clients {
			f.submit(t, cl, demands[cl.Addr()])
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		report, err := initiator.RunRound(ctx)
		cancel()
		if err != nil {
			t.Fatalf("round %d failed outright under churn: %v", round, err)
		}
		rows := opt.RowSums(report.Assignment)
		for i, addr := range report.ClientAddrs {
			if math.Abs(rows[i]-demands[addr]) > 0.2 {
				t.Fatalf("round %d: client %s served %g, want %g", round, addr, rows[i], demands[addr])
			}
		}
		return report
	}
	rosterHas := func(report *RoundReport, addr string) bool {
		for _, a := range report.ReplicaAddrs {
			if a == addr {
				return true
			}
		}
		return false
	}

	// Rounds 1-2: the full fleet schedules under background loss.
	for round := 1; round <= 2; round++ {
		runRound(round)
		f.beatAll()
	}

	// Planned power-down of r4 mid-soak, then cut it off entirely. A
	// powered-down replica stops heartbeating, so only the active members
	// beat — and a drained member must survive a partition well past the
	// suspicion threshold without anyone declaring it dead.
	propose(membership.OpDrain, "r4")
	f.net.Partition([]string{"r4"}, []string{"r1", "r2", "r3", "r5"})
	beatActive := func() {
		for _, rs := range f.replicas {
			if rs.Addr() == "r4" {
				continue
			}
			rs.Monitor().Beat()
		}
	}
	for round := 3; round <= 4; round++ {
		report := runRound(round)
		if rosterHas(report, "r4") {
			t.Fatalf("round %d scheduled the drained replica: %v", round, report.ReplicaAddrs)
		}
		beatActive()
		beatActive() // four beats across the partition: past the threshold
	}
	if got := f.deathList(); len(got) != 0 {
		t.Fatalf("drained member declared dead under partition: %v", got)
	}

	// Power r4 back up: heal the link, undrain, and it rejoins the roster.
	f.net.Heal()
	propose(membership.OpUndrain, "r4")
	report := runRound(5)
	if !rosterHas(report, "r4") {
		t.Fatalf("round 5 roster missing the undrained replica: %v", report.ReplicaAddrs)
	}
	f.beatAll()

	// The churn cost nothing in membership terms: zero deaths fleet-wide
	// and every ring still holds all five members.
	if got := f.deathList(); len(got) != 0 {
		t.Fatalf("false member deaths under churn: %v", got)
	}
	for _, rs := range f.replicas {
		if rs.Ring().Len() != len(f.names) {
			t.Fatalf("%s ring shrank to %d under churn", rs.Addr(), rs.Ring().Len())
		}
	}
}
