package core

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"
	"testing"
	"time"

	"edr/internal/model"
	"edr/internal/opt"
	"edr/internal/transport"
)

// cohortFleet builds a fleet whose initiator aggregates clients into
// cohorts from the first request onward.
func cohortFleet(t *testing.T, prices []float64, nClients int, alg Algorithm) *fleet {
	t.Helper()
	f := &fleet{net: transport.NewInProcNetwork()}
	names := make([]string, len(prices))
	for i := range prices {
		names[i] = replicaName(i)
	}
	for i, price := range prices {
		cfg := ReplicaConfig{
			Replica:          model.NewReplica(replicaName(i), price),
			Algorithm:        alg,
			CohortMinClients: 2,
		}
		rs, err := NewReplicaServer(f.net, replicaName(i), names, cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { rs.Close() })
		f.replicas = append(f.replicas, rs)
	}
	for i := 0; i < nClients; i++ {
		cl, err := NewClient(f.net, clientName(i))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cl.Close() })
		f.clients = append(f.clients, cl)
	}
	return f
}

// classLatencies gives client i one of three shared latency profiles, so
// 12 clients collapse to 3 cohorts: a near class, a far-but-feasible
// class, and a class for which the last replica is beyond the bound.
func classLatencies(f *fleet, i int) map[string]float64 {
	m := make(map[string]float64, len(f.replicas))
	for j, r := range f.replicas {
		switch i % 3 {
		case 0:
			m[r.Addr()] = 0.0004
		case 1:
			m[r.Addr()] = 0.0012
		default:
			if j == len(f.replicas)-1 {
				m[r.Addr()] = 0.0050 // beyond T = 1.8 ms
			} else {
				m[r.Addr()] = 0.0007
			}
		}
	}
	return m
}

// TestCohortedRoundEndToEnd drives a full scheduling round at cohort
// granularity for every registered algorithm and checks the runtime
// contract: the distributed loop saw |K| rows, but clients got exact
// per-client allocations respecting their own latency masks.
func TestCohortedRoundEndToEnd(t *testing.T) {
	for _, alg := range []Algorithm{LDDM, CDPSM, ADMM} {
		t.Run(string(alg), func(t *testing.T) {
			const nClients = 12
			f := cohortFleet(t, []float64{1, 10, 5}, nClients, alg)
			ctx := context.Background()
			demands := make([]float64, nClients)
			for i, cl := range f.clients {
				demands[i] = 4 + float64(i)
				if err := cl.Submit(ctx, f.replicas[0].Addr(), demands[i], classLatencies(f, i)); err != nil {
					t.Fatal(err)
				}
			}
			report, err := f.replicas[0].RunRound(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if report.Cohorts != 3 {
				t.Fatalf("Cohorts = %d, want 3", report.Cohorts)
			}
			if want := float64(nClients) / 3; math.Abs(report.CohortRatio-want) > 1e-12 {
				t.Fatalf("CohortRatio = %g, want %g", report.CohortRatio, want)
			}
			if len(report.ClientAddrs) != nClients || len(report.Assignment) != nClients {
				t.Fatalf("report has %d clients / %d rows, want %d (per-client granularity)",
					len(report.ClientAddrs), len(report.Assignment), nClients)
			}
			// Exact demand conservation per raw client, zero load on the
			// masked-out link of the third class.
			demandOf := make(map[string]float64, nClients)
			classOf := make(map[string]int, nClients)
			for i, cl := range f.clients {
				demandOf[cl.Addr()] = demands[i]
				classOf[cl.Addr()] = i % 3
			}
			lastCol := -1
			for j, addr := range report.ReplicaAddrs {
				if addr == f.replicas[len(f.replicas)-1].Addr() {
					lastCol = j
				}
			}
			for i, addr := range report.ClientAddrs {
				sum := 0.0
				for _, v := range report.Assignment[i] {
					if v < -1e-9 {
						t.Fatalf("negative load for %s: %g", addr, v)
					}
					sum += v
				}
				if math.Abs(sum-demandOf[addr]) > 1e-6 {
					t.Fatalf("%s served %g of demand %g", addr, sum, demandOf[addr])
				}
				if classOf[addr] == 2 && report.Assignment[i][lastCol] != 0 {
					t.Fatalf("%s got %g on its latency-infeasible replica", addr, report.Assignment[i][lastCol])
				}
			}
			if report.Objective <= 0 {
				t.Fatalf("objective = %g", report.Objective)
			}
			// Every client received its allocation despite μ-update fan-out
			// touching only cohort representatives.
			for i, cl := range f.clients {
				alloc, err := cl.WaitAllocation(ctx)
				if err != nil {
					t.Fatalf("client %d allocation: %v", i, err)
				}
				total := 0.0
				for _, mb := range alloc.PerReplicaMB {
					total += mb
				}
				if math.Abs(total-demands[i]) > 1e-6 {
					t.Fatalf("client %d allocated %g of demand %g", i, total, demands[i])
				}
			}

			// A second round exercises the cohort-aggregated warm start
			// (rows summed to cohort granularity, duals demand-averaged).
			for i, cl := range f.clients {
				if err := cl.Submit(ctx, f.replicas[0].Addr(), demands[i], classLatencies(f, i)); err != nil {
					t.Fatal(err)
				}
			}
			second, err := f.replicas[0].RunRound(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if !second.WarmStarted {
				t.Fatal("second cohorted round did not warm-start")
			}
			if second.Cohorts != 3 {
				t.Fatalf("second round Cohorts = %d, want 3", second.Cohorts)
			}
		})
	}
}

// TestCohortingDisabledBelowThreshold pins the gate: fewer pending
// requests than CohortMinClients (or distinct profiles that cannot
// compress) run the classic ungrouped round.
func TestCohortingDisabledBelowThreshold(t *testing.T) {
	f := cohortFleet(t, []float64{1, 5}, 1, LDDM)
	ctx := context.Background()
	if err := f.clients[0].Submit(ctx, f.replicas[0].Addr(), 10, f.uniformLatencies()); err != nil {
		t.Fatal(err)
	}
	report, err := f.replicas[0].RunRound(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if report.Cohorts != 0 || report.CohortRatio != 0 {
		t.Fatalf("single-request round reported cohorts: %d (ratio %g)", report.Cohorts, report.CohortRatio)
	}
	rows := opt.RowSums(report.Assignment)
	if len(rows) != 1 || math.Abs(rows[0]-10) > 1e-6 {
		t.Fatalf("row sums = %v, want [10]", rows)
	}
}

// TestCohortNotifyLegacyFallback pins the wire-compat contract of the
// batched allocation fan-out: a client that rejects the
// client.allocation.cohort verb (an older build) must still receive its
// exact split as a legacy per-client client.allocation message.
func TestCohortNotifyLegacyFallback(t *testing.T) {
	const nModern = 4
	f := cohortFleet(t, []float64{1, 10, 5}, nModern, CDPSM)
	ctx := context.Background()

	// A raw node standing in for an old client: it knows client.allocation
	// but errors on the cohort verb, exactly like Client.handle's default
	// branch in a build that predates it.
	const legacyAddr = "legacy-client"
	const legacyDemand = 7.5
	allocCh := make(chan AllocationBody, 1)
	var cohortRejects atomic.Int64
	node, err := f.net.Listen(legacyAddr, func(ctx context.Context, req transport.Message) (transport.Message, error) {
		switch req.Type {
		case MsgCohortAllocation:
			cohortRejects.Add(1)
			return transport.Message{}, fmt.Errorf("core: client %s: unknown message type %q", legacyAddr, req.Type)
		case MsgAllocation:
			var body AllocationBody
			if err := req.DecodeBody(&body); err != nil {
				return transport.Message{}, err
			}
			select {
			case allocCh <- body:
			default:
			}
			return transport.NewMessage(MsgAllocation+".ack", legacyAddr, nil)
		default:
			return transport.Message{}, fmt.Errorf("legacy client: unexpected %q", req.Type)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { node.Close() })

	// The legacy node submits by speaking the request wire format directly;
	// its latency profile matches class 0, so it lands in a shared cohort.
	reqBody := RequestBody{ClientAddr: legacyAddr, DemandMB: legacyDemand, LatencySec: classLatencies(f, 0)}
	req, err := transport.NewMessage(MsgClientRequest, legacyAddr, reqBody)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := node.Send(ctx, f.replicas[0].Addr(), req)
	if err != nil {
		t.Fatal(err)
	}
	var ack RequestAck
	if err := resp.DecodeBody(&ack); err != nil {
		t.Fatal(err)
	}
	if !ack.Accepted {
		t.Fatal("legacy request rejected")
	}
	demands := make([]float64, nModern)
	for i, cl := range f.clients {
		demands[i] = 4 + float64(i)
		if err := cl.Submit(ctx, f.replicas[0].Addr(), demands[i], classLatencies(f, i)); err != nil {
			t.Fatal(err)
		}
	}

	report, err := f.replicas[0].RunRound(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if report.Cohorts != 3 {
		t.Fatalf("Cohorts = %d, want 3 (legacy joins class 0)", report.Cohorts)
	}
	if cohortRejects.Load() == 0 {
		t.Fatal("legacy client was never offered the cohort verb")
	}
	select {
	case body := <-allocCh:
		sum := 0.0
		for _, mb := range body.PerReplicaMB {
			sum += mb
		}
		if math.Abs(sum-legacyDemand) > 1e-6 {
			t.Fatalf("legacy fallback allocated %g of demand %g", sum, legacyDemand)
		}
		if body.Algorithm != "CDPSM" {
			t.Fatalf("fallback algorithm = %q", body.Algorithm)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("legacy client never received the fallback allocation")
	}
	// Cohort-aware members of the same round are unaffected by the fallback.
	for i, cl := range f.clients {
		alloc, err := cl.WaitAllocation(ctx)
		if err != nil {
			t.Fatalf("client %d allocation: %v", i, err)
		}
		total := 0.0
		for _, mb := range alloc.PerReplicaMB {
			total += mb
		}
		if math.Abs(total-demands[i]) > 1e-6 {
			t.Fatalf("client %d allocated %g of demand %g", i, total, demands[i])
		}
	}
}
