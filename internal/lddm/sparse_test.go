package lddm

import (
	"math"
	"testing"

	"edr/internal/model"
	"edr/internal/opt"
	"edr/internal/probgen"
	"edr/internal/sim"
	"edr/internal/solver"
)

func maskedInstance(t *testing.T, r *sim.Rand, clients, replicas int) *opt.Problem {
	return maskedInstanceSpec(t, r, probgen.Spec{Clients: clients, Replicas: replicas, Geo: true})
}

func maskedInstanceSpec(t *testing.T, r *sim.Rand, spec probgen.Spec) *opt.Problem {
	t.Helper()
	for attempt := 0; attempt < 50; attempt++ {
		prob, err := probgen.MustFeasible(r, spec)
		if err != nil {
			t.Fatal(err)
		}
		if !prob.Sparsity().Full {
			return prob
		}
	}
	t.Fatal("no masked instance in 50 draws")
	return nil
}

func TestSolveLocalPackedMatchesDense(t *testing.T) {
	r := sim.NewRand(53)
	for trial := 0; trial < 30; trial++ {
		c := r.IntBetween(1, 12)
		rep := model.NewReplica("r", r.Range(1, 20))
		rep.Bandwidth = r.Range(20, 120)
		lp := &LocalProblem{
			Replica: rep,
			Mu:      make([]float64, c),
			Demands: make([]float64, c),
			Allowed: make([]bool, c),
		}
		clients := []int{}
		for i := 0; i < c; i++ {
			lp.Mu[i] = r.Range(-2, 2)
			lp.Demands[i] = r.Range(0, 30)
			lp.Allowed[i] = r.Float64() < 0.7
			if lp.Allowed[i] {
				clients = append(clients, i)
			}
		}
		dense, err := SolveLocal(lp)
		if err != nil {
			t.Fatal(err)
		}
		lp.Clients = clients
		packed, err := SolveLocalPacked(lp)
		if err != nil {
			t.Fatal(err)
		}
		for idx, i := range clients {
			if packed[idx] != dense[i] {
				t.Fatalf("trial %d: packed[%d]=%v, dense[%d]=%v", trial, idx, packed[idx], i, dense[i])
			}
		}
		for i, v := range dense {
			if !lp.Allowed[i] && v != 0 {
				t.Fatalf("trial %d: dense wrote masked client %d", trial, i)
			}
		}
	}
}

func TestLDDMSparseIteratesBitForBitWithDense(t *testing.T) {
	// The packed water-filling, μ updates and suffix averaging preserve the
	// dense op order over exact zeros, so Force and Off runs must record
	// identical histories and iteration counts on a masked instance.
	r := sim.NewRand(59)
	prob := maskedInstance(t, r, 10, 4)
	dense, err := (&Solver{Sparse: opt.SparseOff, MaxIters: 400}).Solve(prob)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := (&Solver{Sparse: opt.SparseForce, MaxIters: 400}).Solve(prob)
	if err != nil {
		t.Fatal(err)
	}
	if dense.Iterations != sparse.Iterations {
		t.Fatalf("iterations: dense %d, sparse %d", dense.Iterations, sparse.Iterations)
	}
	for k := range dense.History {
		if dense.History[k] != sparse.History[k] {
			t.Fatalf("history diverges at iteration %d: %v vs %v", k+1, dense.History[k], sparse.History[k])
		}
	}
	// Final assignments go through different (equivalent) projectors; they
	// agree to projection tolerance, as do the objectives.
	if err := solver.Verify(prob, sparse, 1e-4); err != nil {
		t.Fatal(err)
	}
	gap := math.Abs(dense.Objective - sparse.Objective)
	if gap > 1e-9*(1+math.Abs(dense.Objective)) {
		t.Fatalf("objective gap %g (dense %v sparse %v)", gap, dense.Objective, sparse.Objective)
	}
}

func TestLDDMSparseMatchesCentral(t *testing.T) {
	r := sim.NewRand(61)
	prob := maskedInstance(t, r, 8, 4)
	res, err := (&Solver{Sparse: opt.SparseAuto}).Solve(prob)
	if err != nil {
		t.Fatal(err)
	}
	if err := solver.Verify(prob, res, 1e-4); err != nil {
		t.Fatal(err)
	}
}

func TestLDDMSparseParallelSerialBitForBit(t *testing.T) {
	r := sim.NewRand(67)
	prob := maskedInstanceSpec(t, r, probgen.Spec{Clients: 40, Replicas: 6, Geo: true, DemandLo: 1, DemandHi: 6})
	serial, err := (&Solver{Sparse: opt.SparseForce, Parallelism: -1, MaxIters: 500}).Solve(prob)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := (&Solver{Sparse: opt.SparseForce, Parallelism: 4, MaxIters: 500}).Solve(prob)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Iterations != parallel.Iterations {
		t.Fatalf("iterations differ: %d vs %d", serial.Iterations, parallel.Iterations)
	}
	for c := range serial.Assignment {
		for n := range serial.Assignment[c] {
			if serial.Assignment[c][n] != parallel.Assignment[c][n] {
				t.Fatalf("assignment differs at [%d][%d]", c, n)
			}
		}
	}
}

func TestLDDMSparseCommCountsNNZ(t *testing.T) {
	r := sim.NewRand(71)
	prob := maskedInstance(t, r, 8, 4)
	nnz := prob.Sparsity().NNZ()
	res, err := (&Solver{Sparse: opt.SparseForce, MaxIters: 100}).Solve(prob)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Comm.Scalars/res.Iterations, 2*nnz; got != want {
		t.Fatalf("scalars/iteration = %d, want %d (2·nnz)", got, want)
	}
}
