package lddm

import (
	"context"
	"fmt"
	"sync"

	"edr/internal/engine"
	"edr/internal/opt"
	"edr/internal/transport"
)

// MsgLocalSolve is initiator → replica: solve the replica-local problem
// for the current multipliers and return the resulting column.
const MsgLocalSolve = "replica.localsolve"

// SolveBody carries the clients' multipliers to one replica. On the
// binary codec the μ vector rides in a kinded frame (full/sparse/delta)
// with per-peer base negotiation: BaseIter declares which earlier
// iteration's vector the receiver already holds, Base/Resolve are
// marshal/decode context in the transport convention (never serialized
// themselves). The JSON codec always carries the full vector.
type SolveBody struct {
	Round int       `json:"round"`
	Iter  int       `json:"iter"`
	Mu    []float64 `json:"mu"`

	// BaseIter is the iteration id of the μ snapshot the receiver holds
	// (−1: none). Binary codec only.
	BaseIter int `json:"-"`
	// Base is the sender's copy of that snapshot (marshal-time context).
	Base []float64 `json:"-"`
	// Resolve maps a declared base iteration to the receiver's held
	// snapshot (decode-time context).
	Resolve func(iter int) []float64 `json:"-"`
}

// SolveReply returns the replica's column of the primal iterate.
type SolveReply struct {
	Column []float64 `json:"column"`
}

func init() {
	engine.Register(engine.Registration{
		Name:   "LDDM",
		New:    func() engine.Algorithm { return &roundAlg{} },
		Server: serverHalf{},
		Verbs:  []string{MsgLocalSolve},
	})
}

// roundAlg is the initiator half of Algorithm 2 over the fabric: replicas
// answer local solves, clients answer multiplier updates, and the final
// assignment is recovered from a doubling suffix average of the primal.
type roundAlg struct {
	rd   *engine.Round
	k    int
	tol  float64
	step float64

	mu          []float64
	muPeer      [][]float64 // per-replica μ projected onto its support
	sp          *opt.Sparsity
	tx          transport.DeltaTx
	primal, avg [][]float64
	rows        []float64
	windowStart int
	residual    float64

	exchanges []engine.Exchange
}

func (a *roundAlg) Init(rd *engine.Round) error {
	c, n := rd.Prob.C(), rd.Prob.N()
	a.rd = rd
	a.tol = rd.Tol
	if a.tol <= 0 {
		a.tol = 0.02
	}
	a.step = AutoStepValue(rd.Prob)
	a.mu = rd.Pool.Vector(c)
	a.primal = rd.Pool.Matrix(c, n)
	a.avg = rd.Pool.Matrix(c, n)
	a.rows = rd.Pool.Vector(c)
	a.windowStart = 1
	if sp := rd.Prob.Sparsity(); opt.SparseAuto.Enabled(sp) {
		// Masked instance: each replica's local solve reads only its
		// feasible clients' multipliers, so ship μ projected onto that
		// support. The structural zeros are bit-stable across iterations,
		// which is what lets the kinded wire frames go sparse or delta.
		a.sp = sp
		a.muPeer = rd.Pool.Matrix(n, c)
	}
	a.exchanges = []engine.Exchange{
		{
			// Local solves, one per replica (Algorithm 2 lines 4–5;
			// parallel: disjoint primal columns and per-peer μ rows).
			Verb:  MsgLocalSolve,
			Class: engine.Replicas,
			Body: func(j int) any {
				mu := a.mu
				if a.muPeer != nil {
					row := a.muPeer[j] // off-support entries stay zero
					for s := a.sp.ColStart[j]; s < a.sp.ColStart[j+1]; s++ {
						i := a.sp.RowIdx[s]
						row[i] = a.mu[i]
					}
					mu = row
				}
				body := SolveBody{Round: rd.Seq, Iter: a.k, Mu: mu}
				body.Base, body.BaseIter = a.tx.Stage(rd.ReplicaAddrs[j], a.k, mu)
				return body
			},
			Fold: func(j int, r engine.Reply) error {
				// The reply proves the peer decoded (and now holds) the
				// staged μ — promote it to the delta base.
				a.tx.Ack(rd.ReplicaAddrs[j])
				var reply SolveReply
				if err := r.Decode(&reply); err != nil {
					return err
				}
				if len(reply.Column) != c {
					return fmt.Errorf("lddm: %s returned %d entries for %d clients",
						rd.ReplicaAddrs[j], len(reply.Column), c)
				}
				for i := 0; i < c; i++ {
					a.primal[i][j] = reply.Column[i]
				}
				return nil
			},
		},
		{
			// Multiplier updates, one per client — the clients own μ
			// (line 6; parallel: disjoint μ entries).
			Verb:  engine.MsgMuUpdate,
			Class: engine.Clients,
			Body: func(i int) any {
				served := 0.0
				for j := 0; j < n; j++ {
					served += a.primal[i][j]
				}
				return engine.MuUpdateBody{
					Round:    rd.Seq,
					Iter:     a.k,
					ServedMB: served,
					DemandMB: rd.Prob.Demands[i],
					Step:     a.step,
				}
			},
			Fold: func(i int, r engine.Reply) error {
				var reply engine.MuUpdateReply
				if err := r.Decode(&reply); err != nil {
					return err
				}
				a.mu[i] = reply.Mu
				return nil
			},
		},
	}
	return nil
}

func (a *roundAlg) Iterate(k int) []engine.Exchange {
	a.k = k
	return a.exchanges
}

// Converged folds the fresh primal into the doubling suffix average and
// tests its demand residual: the raw water-filling iterate oscillates
// under a constant dual step, so the averaged iterate — also what Recover
// starts from — is the thing to test and to trace. The convergence gate
// waits for a window of 16 so a freshly-restarted average cannot
// spuriously pass.
func (a *roundAlg) Converged(k int) (float64, bool) {
	if k == a.windowStart*2 {
		a.windowStart = k
		opt.Fill(a.avg, 0)
	}
	w := k - a.windowStart + 1
	opt.Scale(a.avg, float64(w-1)/float64(w))
	opt.AXPY(a.avg, 1/float64(w), a.primal)
	a.residual = DemandResidual(a.avg, a.rd.Prob.Demands, a.rows)
	return a.residual, w >= 16 && a.residual <= a.tol
}

// Primal exposes the suffix-averaged iterate for trajectory costing.
func (a *roundAlg) Primal() [][]float64 { return a.avg }

func (a *roundAlg) Recover(ctx context.Context, d *engine.Driver) ([][]float64, error) {
	final := opt.Clone(a.avg)
	if err := opt.ProjectFeasiblePar(a.rd.Prob, final, 1e-6, a.rd.Par); err != nil {
		return nil, fmt.Errorf("lddm: primal recovery: %w", err)
	}
	return final, nil
}

// serverState is one replica's LDDM view of a round: its local
// water-filling problem, re-solved against each iteration's multipliers,
// plus the delta-frame receive window for the μ stream.
type serverState struct {
	mu    sync.Mutex
	local *LocalProblem
	rx    transport.DeltaRx
}

// serverHalf answers MsgLocalSolve on a participant replica.
type serverHalf struct{}

func (serverHalf) Handle(ctx context.Context, verb string, req engine.Reply, sr *engine.ServerRound) (any, error) {
	c := sr.Prob.C()
	// Fetch (or build) the round state before decoding: a delta μ frame
	// resolves its base from the receive window.
	st, err := sr.State("LDDM", func() (any, error) {
		local := &LocalProblem{
			Replica: sr.Prob.System.Replicas[sr.Col],
			Demands: sr.Prob.Demands,
		}
		if sp := sr.Prob.Sparsity(); opt.SparseAuto.Enabled(sp) {
			// Masked instance: water-fill over the packed support only.
			local.Clients = sp.RowIdx[sp.ColStart[sr.Col]:sp.ColStart[sr.Col+1]:sp.ColStart[sr.Col+1]]
		} else {
			mask := sr.Prob.Allowed()
			allowed := make([]bool, c)
			for i := range allowed {
				allowed[i] = mask[i][sr.Col]
			}
			local.Allowed = allowed
		}
		return &serverState{local: local}, nil
	})
	if err != nil {
		return nil, err
	}
	ls := st.(*serverState)
	var body SolveBody
	body.Resolve = ls.rx.Resolve
	if err := req.Decode(&body); err != nil {
		return nil, err
	}
	if len(body.Mu) != c {
		return nil, fmt.Errorf("lddm: round %d: %d multipliers for %d clients", body.Round, len(body.Mu), c)
	}
	ls.rx.Absorb(body.Iter, body.Mu)
	ls.mu.Lock()
	defer ls.mu.Unlock()
	ls.local.Mu = body.Mu
	if ls.local.Clients != nil {
		packed, err := SolveLocalPacked(ls.local)
		if err != nil {
			return nil, err
		}
		col := make([]float64, c)
		for idx, i := range ls.local.Clients {
			col[i] = packed[idx]
		}
		return SolveReply{Column: col}, nil
	}
	col, err := SolveLocal(ls.local)
	if err != nil {
		return nil, err
	}
	return SolveReply{Column: col}, nil
}
