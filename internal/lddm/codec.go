package lddm

import "edr/internal/transport"

// Compact binary codecs (transport binary body v1) for the LDDM verbs:
// the multiplier vector out, the primal column back — |C| float64s each
// way per replica per iteration. Request bodies lead with the u32 LE
// round id per the wire convention.

func (b SolveBody) MarshalBinary() ([]byte, error) {
	out := transport.AppendUint32(nil, uint32(b.Round))
	out = transport.AppendUint32(out, uint32(b.Iter))
	return transport.AppendFloats(out, b.Mu), nil
}

func (b *SolveBody) UnmarshalBinary(data []byte) error {
	round, data, err := transport.ReadUint32(data)
	if err != nil {
		return err
	}
	iter, data, err := transport.ReadUint32(data)
	if err != nil {
		return err
	}
	mu, _, err := transport.ReadFloats(data)
	if err != nil {
		return err
	}
	b.Round, b.Iter, b.Mu = int(round), int(iter), mu
	return nil
}

func (b SolveReply) MarshalBinary() ([]byte, error) {
	return transport.AppendFloats(nil, b.Column), nil
}

func (b *SolveReply) UnmarshalBinary(data []byte) error {
	col, _, err := transport.ReadFloats(data)
	if err != nil {
		return err
	}
	b.Column = col
	return nil
}
