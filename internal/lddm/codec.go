package lddm

import "edr/internal/transport"

// Compact binary codecs for the LDDM verbs: the multiplier vector out,
// the primal column back — |C| float64s each way per replica per
// iteration. Request bodies lead with the u32 LE round id per the wire
// convention. The μ vector rides in a v2 kinded frame: a u32 declares
// the negotiated base iteration (0 = none, else iter+1), then the
// full/sparse/delta layout the marshal-time chooser picked.

func (b SolveBody) MarshalBinary() ([]byte, error) {
	out := transport.AppendUint32(nil, uint32(b.Round))
	out = transport.AppendUint32(out, uint32(b.Iter))
	out = transport.AppendUint32(out, uint32(b.BaseIter+1))
	return transport.AppendFloatsKinded(out, b.Mu, b.Base), nil
}

func (b *SolveBody) UnmarshalBinary(data []byte) error {
	round, data, err := transport.ReadUint32(data)
	if err != nil {
		return err
	}
	iter, data, err := transport.ReadUint32(data)
	if err != nil {
		return err
	}
	baseIter, data, err := transport.ReadUint32(data)
	if err != nil {
		return err
	}
	b.Round, b.Iter, b.BaseIter = int(round), int(iter), int(baseIter)-1
	var base []float64
	if b.BaseIter >= 0 && b.Resolve != nil {
		base = b.Resolve(b.BaseIter)
	}
	mu, _, err := transport.ReadFloatsKinded(data, base)
	if err != nil {
		return err
	}
	b.Mu = mu
	return nil
}

func (b SolveReply) MarshalBinary() ([]byte, error) {
	return transport.AppendFloats(nil, b.Column), nil
}

func (b *SolveReply) UnmarshalBinary(data []byte) error {
	col, _, err := transport.ReadFloats(data)
	if err != nil {
		return err
	}
	b.Column = col
	return nil
}
