package lddm

import (
	"math"
	"testing"

	"edr/internal/model"
	"edr/internal/sim"
)

func localProblem(price float64, mu, demands []float64) *LocalProblem {
	allowed := make([]bool, len(mu))
	for i := range allowed {
		allowed[i] = true
	}
	return &LocalProblem{
		Replica: model.NewReplica("r", price),
		Mu:      mu,
		Demands: demands,
		Allowed: allowed,
	}
}

func TestSolveLocalAllZeroMu(t *testing.T) {
	// With μ = 0, every marginal is positive (serving costs energy and
	// earns nothing), so the optimum is to serve nothing.
	lp := localProblem(5, []float64{0, 0}, []float64{10, 10})
	p, err := SolveLocal(lp)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range p {
		if v != 0 {
			t.Fatalf("p[%d] = %g, want 0 at zero multipliers", i, v)
		}
	}
}

func TestSolveLocalNegativeMuServes(t *testing.T) {
	// Strongly negative μ makes serving worthwhile up to the cap.
	lp := localProblem(1, []float64{-1e6}, []float64{10})
	p, err := SolveLocal(lp)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p[0]-10) > 1e-9 {
		t.Fatalf("p = %g, want full demand 10", p[0])
	}
}

func TestSolveLocalRespectsBandwidth(t *testing.T) {
	lp := localProblem(1, []float64{-1e6, -1e6}, []float64{80, 80})
	p, err := SolveLocal(lp)
	if err != nil {
		t.Fatal(err)
	}
	if s := p[0] + p[1]; s > lp.Replica.Bandwidth+1e-9 {
		t.Fatalf("total %g exceeds bandwidth %g", s, lp.Replica.Bandwidth)
	}
}

func TestSolveLocalPrefersLowerMu(t *testing.T) {
	// Capacity 100; two clients demanding 80 each; the lower-μ client is
	// served first.
	lp := localProblem(1, []float64{-1e6, -0.5e6}, []float64{80, 80})
	p, err := SolveLocal(lp)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p[0]-80) > 1e-9 {
		t.Fatalf("low-μ client got %g, want 80", p[0])
	}
	if math.Abs(p[1]-20) > 1e-9 {
		t.Fatalf("high-μ client got %g, want 20 (remaining capacity)", p[1])
	}
}

func TestSolveLocalStopsAtBreakEven(t *testing.T) {
	// Moderate μ: serving stops where marginal cost reaches −μ.
	// Marginal = u(α + βγS²) = 1 + 0.03S². With μ = −4: S* = √(3/0.03) = 10.
	lp := localProblem(1, []float64{-4}, []float64{50})
	p, err := SolveLocal(lp)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p[0]-10) > 1e-6 {
		t.Fatalf("p = %g, want break-even 10", p[0])
	}
}

func TestSolveLocalMaskedClient(t *testing.T) {
	lp := localProblem(1, []float64{-1e6, -1e6}, []float64{10, 10})
	lp.Allowed[0] = false
	p, err := SolveLocal(lp)
	if err != nil {
		t.Fatal(err)
	}
	if p[0] != 0 {
		t.Fatalf("masked client served %g", p[0])
	}
	if math.Abs(p[1]-10) > 1e-9 {
		t.Fatalf("allowed client got %g", p[1])
	}
}

func TestSolveLocalValidate(t *testing.T) {
	lp := localProblem(1, []float64{0}, []float64{1, 2})
	if _, err := SolveLocal(lp); err == nil {
		t.Fatal("shape mismatch accepted")
	}
	if _, err := SolveLocal(&LocalProblem{}); err == nil {
		t.Fatal("empty local problem accepted")
	}
}

func TestMarginalLoad(t *testing.T) {
	r := model.NewReplica("r", 2)
	// marginal(S) = 2(1 + 0.03S²); at S=10: 2·4 = 8. Invert.
	if got := marginalLoad(r, 8); math.Abs(got-10) > 1e-9 {
		t.Fatalf("marginalLoad(8) = %g, want 10", got)
	}
	// At or below the base marginal 2: zero load.
	if got := marginalLoad(r, 2); got != 0 {
		t.Fatalf("marginalLoad(base) = %g, want 0", got)
	}
	if got := marginalLoad(r, 1); got != 0 {
		t.Fatalf("marginalLoad(below base) = %g, want 0", got)
	}
	// Linear replica (γ=1): constant marginal, infinite break-even.
	r.Gamma = 1
	if got := marginalLoad(r, 100); !math.IsInf(got, 1) {
		t.Fatalf("γ=1 marginalLoad = %g, want +Inf", got)
	}
}

// Property: water-filling matches projected gradient descent on random
// local problems (the two independent solvers agree on the objective).
func TestSolveLocalMatchesPGDProperty(t *testing.T) {
	r := sim.NewRand(42)
	for trial := 0; trial < 40; trial++ {
		c := 1 + r.Intn(6)
		mu := make([]float64, c)
		demands := make([]float64, c)
		allowed := make([]bool, c)
		for i := 0; i < c; i++ {
			mu[i] = r.Range(-40, 5)
			demands[i] = r.Range(1, 30)
			allowed[i] = r.Float64() < 0.85
		}
		lp := &LocalProblem{
			Replica: model.NewReplica("r", float64(r.IntBetween(1, 20))),
			Mu:      mu,
			Demands: demands,
			Allowed: allowed,
		}
		exact, err := SolveLocal(lp)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		approx, err := SolveLocalPGD(lp, 4000, 0.5)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		fExact := LocalObjective(lp, exact)
		fApprox := LocalObjective(lp, approx)
		// The exact solver must never be worse than PGD (beyond noise).
		if fExact > fApprox+1e-3*(1+math.Abs(fApprox)) {
			t.Fatalf("trial %d: water-filling %g worse than PGD %g\nmu=%v demands=%v allowed=%v",
				trial, fExact, fApprox, mu, demands, allowed)
		}
	}
}

// Property: the water-filling output satisfies the local KKT conditions.
func TestSolveLocalKKTProperty(t *testing.T) {
	r := sim.NewRand(77)
	for trial := 0; trial < 60; trial++ {
		c := 1 + r.Intn(5)
		mu := make([]float64, c)
		demands := make([]float64, c)
		allowed := make([]bool, c)
		for i := 0; i < c; i++ {
			mu[i] = r.Range(-30, 2)
			demands[i] = r.Range(1, 25)
			allowed[i] = true
		}
		lp := &LocalProblem{
			Replica: model.NewReplica("r", float64(r.IntBetween(1, 20))),
			Mu:      mu,
			Demands: demands,
			Allowed: allowed,
		}
		p, err := SolveLocal(lp)
		if err != nil {
			t.Fatal(err)
		}
		s := 0.0
		for _, v := range p {
			s += v
		}
		if s > lp.Replica.Bandwidth+1e-9 {
			t.Fatalf("trial %d: capacity violated", trial)
		}
		atCapacity := s >= lp.Replica.Bandwidth-1e-9
		marginal := lp.Replica.MarginalCost(s)
		for i := 0; i < c; i++ {
			g := marginal + mu[i] // ∂f/∂p_i
			switch {
			case p[i] < -1e-12 || p[i] > demands[i]+1e-9:
				t.Fatalf("trial %d: box violated: p[%d]=%g", trial, i, p[i])
			case p[i] <= 1e-9:
				// At lower bound: gradient must be >= 0 (unless capacity
				// binds, which also justifies zero).
				if g < -1e-6 && !atCapacity {
					t.Fatalf("trial %d: client %d at 0 with negative gradient %g", trial, i, g)
				}
			case p[i] >= demands[i]-1e-9:
				// At cap: gradient must be <= 0.
				if g > 1e-6 {
					t.Fatalf("trial %d: client %d at cap with positive gradient %g", trial, i, g)
				}
			default:
				// Interior: gradient ≈ 0 (or capacity binds).
				if math.Abs(g) > 1e-5 && !atCapacity {
					t.Fatalf("trial %d: client %d interior with gradient %g", trial, i, g)
				}
			}
		}
	}
}

func TestSolveLocalPGDBadArgs(t *testing.T) {
	lp := localProblem(1, []float64{0}, []float64{1})
	if _, err := SolveLocalPGD(lp, 0, 1); err == nil {
		t.Fatal("zero iters accepted")
	}
	if _, err := SolveLocalPGD(lp, 10, 0); err == nil {
		t.Fatal("zero step accepted")
	}
}
