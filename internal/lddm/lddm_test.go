package lddm

import (
	"math"
	"testing"

	"edr/internal/central"
	"edr/internal/opt"
	"edr/internal/probgen"
	"edr/internal/sim"
	"edr/internal/solver"
)

func TestLDDMName(t *testing.T) {
	if New().Name() != "LDDM" {
		t.Fatalf("Name = %q", New().Name())
	}
}

func TestLDDMSimpleInstance(t *testing.T) {
	r := sim.NewRand(1)
	prob, err := probgen.MustFeasible(r, probgen.Spec{Clients: 4, Replicas: 3, Prices: []float64{1, 10, 5}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := New().Solve(prob)
	if err != nil {
		t.Fatal(err)
	}
	if err := solver.Verify(prob, res, 1e-4); err != nil {
		t.Fatal(err)
	}
	// The cheap replica (price 1) must carry the most load.
	loads := opt.ColSums(res.Assignment)
	if loads[0] <= loads[1] || loads[0] <= loads[2] {
		t.Fatalf("cheap replica not preferred: loads = %v", loads)
	}
}

func TestLDDMMatchesCentralizedOptimum(t *testing.T) {
	r := sim.NewRand(7)
	for trial := 0; trial < 8; trial++ {
		prob, err := probgen.MustFeasible(r, probgen.Spec{Clients: 5, Replicas: 4})
		if err != nil {
			t.Fatal(err)
		}
		ld, err := New().Solve(prob)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		ref, err := central.New().Solve(prob)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := solver.Verify(prob, ld, 1e-4); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// LDDM should land within a few percent of the central optimum.
		if ld.Objective > ref.Objective*1.05+1e-6 {
			t.Fatalf("trial %d: LDDM %.4f vs central %.4f (>5%% gap)", trial, ld.Objective, ref.Objective)
		}
	}
}

func TestLDDMGeoInstanceRespectsMask(t *testing.T) {
	r := sim.NewRand(13)
	prob, err := probgen.MustFeasible(r, probgen.Spec{Clients: 8, Replicas: 5, Geo: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := New().Solve(prob)
	if err != nil {
		t.Fatal(err)
	}
	mask := prob.Allowed()
	for c := range res.Assignment {
		for n, v := range res.Assignment[c] {
			if !mask[c][n] && v > 1e-9 {
				t.Fatalf("latency-infeasible entry [%d][%d] = %g", c, n, v)
			}
		}
	}
}

func TestLDDMCommunicationLinearInCN(t *testing.T) {
	r := sim.NewRand(17)
	prob, err := probgen.MustFeasible(r, probgen.Spec{Clients: 6, Replicas: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := New().Solve(prob)
	if err != nil {
		t.Fatal(err)
	}
	perIter := res.Comm.Scalars / res.Iterations
	if want := 2 * 6 * 3; perIter != want {
		t.Fatalf("scalars/iteration = %d, want %d (O(C·N))", perIter, want)
	}
}

func TestLDDMInfeasibleInstanceRejected(t *testing.T) {
	r := sim.NewRand(19)
	prob, err := probgen.New(r, probgen.Spec{Clients: 2, Replicas: 2, Demands: []float64{500, 500}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New().Solve(prob); err == nil {
		t.Fatal("infeasible instance accepted")
	}
}

func TestLDDMHistoryRecorded(t *testing.T) {
	r := sim.NewRand(23)
	prob, err := probgen.MustFeasible(r, probgen.Spec{Clients: 3, Replicas: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := New().Solve(prob)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != res.Iterations {
		t.Fatalf("history has %d entries for %d iterations", len(res.History), res.Iterations)
	}
	for i, h := range res.History {
		if math.IsNaN(h) || h < 0 {
			t.Fatalf("history[%d] = %g", i, h)
		}
	}
}

func TestLDDMConvergesOnPaperScale(t *testing.T) {
	// 8 replicas with the paper's price vector, a dozen clients.
	r := sim.NewRand(29)
	prob, err := probgen.MustFeasible(r, probgen.Spec{
		Clients:  12,
		Replicas: 8,
		Prices:   []float64{1, 8, 1, 6, 1, 5, 2, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := New().Solve(prob)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge in %d iterations", res.Iterations)
	}
	if err := solver.Verify(prob, res, 1e-4); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizeRows(t *testing.T) {
	r := sim.NewRand(31)
	prob, err := probgen.New(r, probgen.Spec{Clients: 2, Replicas: 2, Demands: []float64{10, 20}})
	if err != nil {
		t.Fatal(err)
	}
	x := [][]float64{{2, 3}, {0, 0}}
	out := normalizeRows(prob, x)
	if s := out[0][0] + out[0][1]; math.Abs(s-10) > 1e-9 {
		t.Fatalf("row 0 normalized to %g, want 10", s)
	}
	if out[1][0] != 0 || out[1][1] != 0 {
		t.Fatalf("zero row rescaled: %v", out[1])
	}
	// Input untouched.
	if x[0][0] != 2 {
		t.Fatal("normalizeRows mutated input")
	}
}

// Scale beyond the paper's 8 replicas: the solver must stay correct (and
// near-reference) on a 16-replica, 64-client instance.
func TestLDDMScalesBeyondPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test skipped in -short mode")
	}
	r := sim.NewRand(71)
	prob, err := probgen.MustFeasible(r, probgen.Spec{
		Clients:  64,
		Replicas: 16,
		Geo:      true,
		DemandLo: 2,
		DemandHi: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := New().Solve(prob)
	if err != nil {
		t.Fatal(err)
	}
	if err := solver.Verify(prob, res, 1e-3); err != nil {
		t.Fatal(err)
	}
	ref, err := opt.FrankWolfe(prob, opt.FWOptions{MaxIters: 400})
	if err != nil {
		t.Fatal(err)
	}
	if res.Objective > ref.Objective*1.05+1e-6 {
		t.Fatalf("scale instance: LDDM %.1f vs reference %.1f (>5%% gap)", res.Objective, ref.Objective)
	}
}
