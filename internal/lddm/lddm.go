package lddm

import (
	"fmt"
	"math"

	"edr/internal/opt"
	"edr/internal/solver"
)

// Solver runs LDDM to convergence on one problem instance, simulating the
// replica/client message exchange in-process. (The live message-passing
// deployment is in internal/core; this solver is the shared engine.)
type Solver struct {
	// Step is the dual step size d; nil means a constant step auto-scaled
	// to the instance (see AutoStep) — the paper uses constant steps for
	// both algorithms "to guarantee the fairness of the comparison".
	Step opt.StepRule
	// StepRamp tunes the auto-scaled step when Step is nil: the dual
	// multipliers reach working magnitude in roughly StepRamp iterations
	// (see AutoStepScaled). 0 means the conservative default, 50.
	StepRamp float64
	// MaxIters bounds dual iterations; 0 means 3000.
	MaxIters int
	// FeasibleHistory, when true, records History[k] as the cost of the
	// feasibility-repaired suffix average at iteration k — the objective a
	// deployment would obtain if it stopped there. This is the curve shown
	// in Fig 5; it costs one extra projection per iteration, so it is off
	// by default (the default history records the cheap demand-normalized
	// iterate, a diagnostic only: that iterate can violate capacity and
	// dip below the feasible optimum).
	FeasibleHistory bool
	// Tol declares convergence when the suffix-averaged primal iterate's
	// worst relative demand residual falls below Tol; 0 means 0.01. The
	// raw dual iterates oscillate under a constant step (the water-filling
	// response to μ is discontinuous), so an average — not the raw
	// iterate — is the right thing to test, and it is also what the final
	// assignment is recovered from. Plain from-the-start averaging decays
	// only like burn-in/k, so the average restarts at powers of two
	// ("doubling suffix averaging"), discarding burn-in bias.
	Tol float64
	// Parallelism fans the per-replica local solves (disjoint primal
	// columns) and the recovery projections across cores: > 0 pins the
	// worker count, 0 sizes from GOMAXPROCS, < 0 forces serial. Parallel
	// and serial runs are bit-identical.
	Parallelism int
	// Sparse selects the packed sparse kernels (CSR primal, packed
	// water-filling over each replica's client list). The default,
	// opt.SparseAuto, dispatches on the instance: masked instances run
	// sparse, fully-feasible ones keep the dense kernels bit-for-bit.
	// The packed water-filling preserves the dense candidate order and
	// arithmetic, so on masked instances the sparse iterates (and the
	// recorded History) are also bit-identical to the dense ones; only the
	// final polish differs within projection tolerance.
	Sparse opt.SparseMode
}

// New returns an LDDM solver with the defaults above.
func New() *Solver { return &Solver{} }

// Name implements solver.Solver.
func (s *Solver) Name() string { return "LDDM" }

// AutoStep returns a constant dual step scaled to the instance: the
// multipliers must travel to ≈ −marginalCost(typical load) while moving
// step·residual per iteration, so the step is chosen to cover that
// distance in roughly 50 iterations at typical residual magnitudes.
func AutoStep(prob *opt.Problem) opt.StepRule {
	return AutoStepScaled(prob, 50)
}

// AutoStepScaled is AutoStep with an explicit ramp length: the dual
// multipliers reach working magnitude in roughly rampIters iterations.
// Smaller values converge faster but oscillate more; the engine default
// of 50 is conservative, while the Fig 5 convergence experiment uses a
// more aggressive ramp.
func AutoStepScaled(prob *opt.Problem, rampIters float64) opt.StepRule {
	return opt.ConstantStep(autoStepValue(prob, rampIters))
}

// AutoStepValue is AutoStep's constant as a scalar, for callers that ship
// the step inside wire messages (the distributed round's μ updates)
// rather than evaluating a StepRule.
func AutoStepValue(prob *opt.Problem) float64 {
	return autoStepValue(prob, 50)
}

func autoStepValue(prob *opt.Problem, rampIters float64) float64 {
	totalDemand := 0.0
	for _, r := range prob.Demands {
		totalDemand += r
	}
	n := prob.N()
	typLoad := totalDemand / float64(n)
	meanMarginal := 0.0
	for _, rep := range prob.System.Replicas {
		meanMarginal += rep.MarginalCost(typLoad)
	}
	meanMarginal /= float64(n)
	meanDemand := totalDemand / float64(prob.C())
	if meanDemand <= 0 || meanMarginal <= 0 {
		return 0.01
	}
	if rampIters <= 0 {
		rampIters = 50
	}
	return meanMarginal / (rampIters * meanDemand)
}

// DemandResidual returns the worst relative demand violation of x's row
// sums: max_c |Σ_n x[c][n] − R_c| / max(R_c, 1). rows is optional scratch
// of length len(x) (allocated when nil). The in-process solver and the
// distributed round's convergence test share this one definition, so the
// traced trajectory and the stopping rule can never drift apart.
func DemandResidual(x [][]float64, demands, rows []float64) float64 {
	if rows == nil {
		rows = make([]float64, len(x))
	}
	opt.RowSumsInto(rows, x)
	maxRel := 0.0
	for i, r := range rows {
		denom := demands[i]
		if denom < 1 {
			denom = 1
		}
		if rel := math.Abs(r-demands[i]) / denom; rel > maxRel {
			maxRel = rel
		}
	}
	return maxRel
}

// Solve implements solver.Solver.
func (s *Solver) Solve(prob *opt.Problem) (*solver.Result, error) {
	if err := prob.Validate(); err != nil {
		return nil, err
	}
	if err := opt.CheckFeasible(prob); err != nil {
		return nil, err
	}
	if sp := prob.Sparsity(); s.Sparse.Enabled(sp) {
		return s.solveSparse(prob, sp)
	}
	step := s.Step
	if step == nil {
		step = AutoStepScaled(prob, s.StepRamp)
	}
	maxIters := s.MaxIters
	if maxIters <= 0 {
		maxIters = 3000
	}
	tol := s.Tol
	if tol <= 0 {
		tol = 0.01
	}

	c, n := prob.C(), prob.N()
	mask := prob.Allowed()
	// Per-replica local solves write disjoint primal columns, so they fan
	// across cores bit-identically; the gate keeps small instances serial.
	par := opt.NewParallel(s.Parallelism).Gate(c * n)

	// Clients hold the multipliers; replicas hold their columns.
	mu := make([]float64, c)
	locals := make([]*LocalProblem, n)
	for j := 0; j < n; j++ {
		allowed := make([]bool, c)
		for i := 0; i < c; i++ {
			allowed[i] = mask[i][j]
		}
		locals[j] = &LocalProblem{
			Replica: prob.System.Replicas[j],
			Mu:      mu, // shared slice: replicas read the latest multipliers
			Demands: prob.Demands,
			Allowed: allowed,
		}
	}

	res := &solver.Result{}
	primal := opt.NewMatrix(c, n)
	avgRows := make([]float64, c)
	// Suffix-averaged primal iterate (restarted at powers of two): dual
	// gradient methods with constant steps oscillate around the optimum;
	// the window average converges, and restarting sheds burn-in bias.
	avg := opt.NewMatrix(c, n)
	windowStart := 1

	for k := 1; k <= maxIters; k++ {
		// Each replica solves its local problem given the current μ
		// (Algorithm 2 line 4) and sends its column to the clients
		// (line 5). SolveLocal reads the shared μ snapshot and writes only
		// its own primal column.
		if err := par.ForErr(n, func(_, lo, hi int) error {
			for j := lo; j < hi; j++ {
				col, err := SolveLocal(locals[j])
				if err != nil {
					return fmt.Errorf("lddm: replica %d local solve: %w", j, err)
				}
				for i := 0; i < c; i++ {
					primal[i][j] = col[i]
				}
			}
			return nil
		}); err != nil {
			return nil, err
		}
		// Each client updates its multiplier from its served total
		// (line 6): μ_c += d·(Σ_n p_{c,n} − R_c).
		d := step(k)
		for i := 0; i < c; i++ {
			served := 0.0
			for j := 0; j < n; j++ {
				served += primal[i][j]
			}
			mu[i] += d * (served - prob.Demands[i])
		}
		// Doubling suffix average: restart the window at powers of two,
		// then avg ← avg + (primal − avg)/w over the current window.
		if k == windowStart*2 {
			windowStart = k
			opt.Fill(avg, 0)
		}
		w := k - windowStart + 1
		opt.Scale(avg, float64(w-1)/float64(w))
		opt.AXPY(avg, 1/float64(w), primal)

		// Convergence test on the averaged iterate's demand residuals —
		// only once the window is wide enough to have smoothed the
		// oscillation.
		maxRel := math.Inf(1)
		if w >= 64 {
			maxRel = DemandResidual(avg, prob.Demands, avgRows)
		}

		// Communication accounting (paper §III-D.2): each iteration every
		// replica exchanges its |C| column entries with the clients and
		// receives |C| multipliers → O(|C|·|N|) scalars.
		res.Comm.Messages += 2 * c * n
		res.Comm.Scalars += 2 * c * n
		res.Iterations = k

		// Record the objective of the demand-normalized iterate so the
		// convergence history (Fig 5) reflects comparable feasible costs.
		if s.FeasibleHistory {
			repaired := opt.Clone(avg)
			if err := opt.ProjectFeasibleMode(prob, repaired, 1e-4, par, s.Sparse); err != nil {
				return nil, fmt.Errorf("lddm: history repair at iteration %d: %w", k, err)
			}
			res.History = append(res.History, prob.Cost(repaired))
		} else {
			res.History = append(res.History, prob.Cost(normalizeRows(prob, primal)))
		}

		if maxRel <= tol {
			res.Converged = true
			break
		}
	}

	// Primal recovery: start from the ergodic average and repair
	// feasibility exactly (constant-step dual iterates are near- but not
	// exactly feasible).
	final := opt.Clone(avg)
	if err := opt.ProjectFeasibleMode(prob, final, 1e-6, par, s.Sparse); err != nil {
		return nil, fmt.Errorf("lddm: primal recovery: %w", err)
	}
	res.Assignment = final
	res.Objective = prob.Cost(final)
	return res, nil
}

// normalizeRows rescales each client's row toward its demand so intermediate
// dual iterates can be costed on a comparable footing. Rows currently at
// zero are left alone (their cost contribution is zero anyway).
func normalizeRows(prob *opt.Problem, x [][]float64) [][]float64 {
	out := opt.Clone(x)
	for c := range out {
		sum := 0.0
		for _, v := range out[c] {
			sum += v
		}
		if sum > 1e-12 {
			scale := prob.Demands[c] / sum
			for j := range out[c] {
				out[c][j] *= scale
			}
		}
	}
	return out
}
