// Package lddm implements the Lagrangian dual decomposition method (paper
// Algorithm 2, after Bertsekas & Tsitsiklis, "Parallel and Distributed
// Computation", 1989) for the EDR replica-selection problem.
//
// The client-demand equality constraints Σ_n p_{c,n} = R_c couple the
// replicas' variables, so they are dualized with multipliers μ_c held by
// the clients. Each replica n then solves a purely local problem over its
// own column {p_{c,n}}:
//
//	minimize   E_n(S) + Σ_c μ_c · p_{c,n}     where S = Σ_c p_{c,n}
//	subject to 0 ≤ p_{c,n} ≤ R_c,  S ≤ B_n,  p_{c,n} = 0 if l_{c,n} > T
//
// and each client c updates its multiplier by gradient ascent on the dual:
// μ_c ← μ_c + d·(Σ_n p_{c,n} − R_c). Coordination is purely pairwise
// between clients and replicas — O(|C|·|N|) scalars per iteration, the
// source of LDDM's speed advantage over CDPSM (paper §III-D.2).
package lddm

import (
	"fmt"
	"math"
	"sort"

	"edr/internal/model"
)

// LocalProblem is the data replica n needs for one local solve.
type LocalProblem struct {
	// Replica carries u_n, α_n, β_n, γ_n and B_n.
	Replica model.Replica
	// Mu holds the clients' current multipliers μ_c.
	Mu []float64
	// Demands holds R_c — the per-client caps p_{c,n} ≤ R_c.
	Demands []float64
	// Allowed[c] reports whether this replica is within client c's
	// latency bound.
	Allowed []bool
	// Clients, when non-nil, is the packed form of Allowed: the ascending
	// client ids this replica may serve (a CSC column slice of the
	// problem's Sparsity view). SolveLocalPacked uses it to run the
	// water-filling in O(|Clients| log |Clients|) instead of O(|C| log |C|);
	// Mu and Demands stay full-length and are indexed through it.
	Clients []int
}

// Validate checks shape consistency.
func (lp *LocalProblem) Validate() error {
	c := len(lp.Mu)
	if c == 0 {
		return fmt.Errorf("lddm: local problem has no clients")
	}
	if len(lp.Demands) != c || len(lp.Allowed) != c {
		return fmt.Errorf("lddm: local problem shape mismatch: mu %d, demands %d, allowed %d",
			c, len(lp.Demands), len(lp.Allowed))
	}
	return lp.Replica.Validate()
}

// marginalLoad inverts the marginal-cost function: the load S at which
// u·(α + βγ·(Base+S)^{γ−1}) equals m, or 0 when m is below the idle
// marginal and +Inf when β or γ make the polynomial term vanish and m
// exceeds the constant marginal. A frozen Base shifts the curve left: the
// returned S is the *additional* load this solve may place on top of it.
func marginalLoad(r model.Replica, m float64) float64 {
	idle := r.Price * r.Alpha
	if m <= idle {
		return 0
	}
	poly := r.Price * r.Beta * r.Gamma
	if poly <= 0 || r.Gamma == 1 {
		return math.Inf(1) // marginal cost is constant; any load qualifies
	}
	s := math.Pow((m-idle)/poly, 1/(r.Gamma-1)) - r.Base
	if s < 0 {
		return 0
	}
	return s
}

// SolveLocal solves the replica-local problem exactly by water-filling.
//
// The objective is Φ(S) + Σ μ_c p_c with Φ convex increasing, so the
// optimum allocates to clients in ascending-μ order: client c receives
// load while the marginal Φ'(S) + μ_c stays negative, stopping at its cap
// R_c, at the capacity B_n, or at the break-even load Φ'(S) = −μ_c,
// whichever comes first. Clients with μ_c ≥ −Φ'(current S) receive
// nothing, as do latency-infeasible clients.
func SolveLocal(lp *LocalProblem) ([]float64, error) {
	if err := lp.Validate(); err != nil {
		return nil, err
	}
	c := len(lp.Mu)
	p := make([]float64, c)

	// Candidate clients in ascending μ.
	order := make([]int, 0, c)
	for i := 0; i < c; i++ {
		if lp.Allowed[i] && lp.Demands[i] > 0 {
			order = append(order, i)
		}
	}
	sort.Slice(order, func(a, b int) bool { return lp.Mu[order[a]] < lp.Mu[order[b]] })

	s := 0.0
	budget := lp.Replica.Bandwidth
	for _, i := range order {
		if s >= budget-1e-15 {
			break
		}
		mu := lp.Mu[i]
		// Load level at which this client's marginal hits zero.
		breakEven := marginalLoad(lp.Replica, -mu)
		if breakEven <= s {
			break // this and all later clients have non-negative marginals
		}
		take := math.Min(lp.Demands[i], math.Min(budget, breakEven)-s)
		if take <= 0 {
			break
		}
		p[i] = take
		s += take
	}
	return p, nil
}

// SolveLocalPacked is SolveLocal on the packed client list: it returns the
// column values for lp.Clients only (same order), skipping the masked-out
// clients entirely. The candidate ordering, accumulation order and
// water-filling arithmetic are identical to SolveLocal's, so the returned
// values are bit-for-bit the supported entries of the dense solution.
func SolveLocalPacked(lp *LocalProblem) ([]float64, error) {
	if lp.Clients == nil {
		return nil, fmt.Errorf("lddm: SolveLocalPacked needs a packed client list")
	}
	c := len(lp.Mu)
	if c == 0 {
		return nil, fmt.Errorf("lddm: local problem has no clients")
	}
	if len(lp.Demands) != c {
		return nil, fmt.Errorf("lddm: local problem shape mismatch: mu %d, demands %d", c, len(lp.Demands))
	}
	if err := lp.Replica.Validate(); err != nil {
		return nil, err
	}
	p := make([]float64, len(lp.Clients))

	// Candidate positions in ascending μ. lp.Clients is ascending, so the
	// pre-sort sequence (and hence the sort's permutation on ties) matches
	// the dense path exactly.
	order := make([]int, 0, len(lp.Clients))
	for idx, i := range lp.Clients {
		if lp.Demands[i] > 0 {
			order = append(order, idx)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		return lp.Mu[lp.Clients[order[a]]] < lp.Mu[lp.Clients[order[b]]]
	})

	s := 0.0
	budget := lp.Replica.Bandwidth
	for _, idx := range order {
		if s >= budget-1e-15 {
			break
		}
		i := lp.Clients[idx]
		mu := lp.Mu[i]
		breakEven := marginalLoad(lp.Replica, -mu)
		if breakEven <= s {
			break
		}
		take := math.Min(lp.Demands[i], math.Min(budget, breakEven)-s)
		if take <= 0 {
			break
		}
		p[idx] = take
		s += take
	}
	return p, nil
}

// LocalObjective evaluates E_n(S) + Σ μ_c p_c for a candidate column p.
func LocalObjective(lp *LocalProblem, p []float64) float64 {
	s := 0.0
	linear := 0.0
	for c, v := range p {
		s += v
		linear += lp.Mu[c] * v
	}
	return lp.Replica.Cost(s) + linear
}

// SolveLocalPGD solves the same local problem by projected gradient
// descent — a slower, independent method used in tests to cross-check the
// water-filling solution.
func SolveLocalPGD(lp *LocalProblem, iters int, step float64) ([]float64, error) {
	if err := lp.Validate(); err != nil {
		return nil, err
	}
	if iters <= 0 || step <= 0 {
		return nil, fmt.Errorf("lddm: SolveLocalPGD needs positive iters and step")
	}
	c := len(lp.Mu)
	p := make([]float64, c)
	for k := 1; k <= iters; k++ {
		s := 0.0
		for _, v := range p {
			s += v
		}
		marginal := lp.Replica.MarginalCost(s)
		d := step / math.Sqrt(float64(k))
		for i := 0; i < c; i++ {
			if !lp.Allowed[i] {
				p[i] = 0
				continue
			}
			p[i] -= d * (marginal + lp.Mu[i])
			if p[i] < 0 {
				p[i] = 0
			} else if p[i] > lp.Demands[i] {
				p[i] = lp.Demands[i]
			}
		}
		// Re-impose the capacity budget.
		s = 0.0
		for _, v := range p {
			s += v
		}
		if s > lp.Replica.Bandwidth {
			scale := lp.Replica.Bandwidth / s
			for i := range p {
				p[i] *= scale
			}
		}
	}
	return p, nil
}
