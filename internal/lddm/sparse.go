package lddm

import (
	"fmt"
	"math"

	"edr/internal/opt"
	"edr/internal/solver"
)

// Packed sparse LDDM: the primal lives as a CSR vector over the
// latency-feasibility support, each replica water-fills only its packed
// client list, and the suffix averaging, μ updates and history run in
// O(nnz) per iteration. Because SolveLocalPacked preserves the dense
// candidate order and arithmetic and every dense off-support entry is an
// exact zero, the packed iterates are bit-identical to the dense ones on
// the same instance.

// packedRowSums writes each client's served total Σ_n v_{c,n} of a
// CSR-packed vector into rows — the same ascending-replica accumulation
// order as the dense row sums.
func packedRowSums(sp *opt.Sparsity, v, rows []float64) {
	for c := 0; c < sp.C; c++ {
		s := 0.0
		for k := sp.RowStart[c]; k < sp.RowStart[c+1]; k++ {
			s += v[k]
		}
		rows[c] = s
	}
}

// packedDemandResidual is DemandResidual on a CSR-packed iterate.
func packedDemandResidual(sp *opt.Sparsity, v, demands, rows []float64) float64 {
	packedRowSums(sp, v, rows)
	maxRel := 0.0
	for i, r := range rows {
		denom := demands[i]
		if denom < 1 {
			denom = 1
		}
		if rel := math.Abs(r-demands[i]) / denom; rel > maxRel {
			maxRel = rel
		}
	}
	return maxRel
}

// packedNormalizedCost is Cost(normalizeRows(prob, v)) without densifying:
// each row is rescaled toward its demand and the per-replica loads are
// accumulated directly in row-major order — the same order the dense
// objective walks the matrix, so the value is bit-identical.
func packedNormalizedCost(prob *opt.Problem, sp *opt.Sparsity, v, rows, loads []float64) float64 {
	packedRowSums(sp, v, rows)
	for n := range loads {
		loads[n] = 0
	}
	for c := 0; c < sp.C; c++ {
		scale := 1.0
		if rows[c] > 1e-12 {
			scale = prob.Demands[c] / rows[c]
		}
		for k := sp.RowStart[c]; k < sp.RowStart[c+1]; k++ {
			loads[sp.ColIdx[k]] += v[k] * scale
		}
	}
	return prob.System.CostOfLoads(loads)
}

// solveSparse is Solve on the packed kernels.
func (s *Solver) solveSparse(prob *opt.Problem, sp *opt.Sparsity) (*solver.Result, error) {
	step := s.Step
	if step == nil {
		step = AutoStepScaled(prob, s.StepRamp)
	}
	maxIters := s.MaxIters
	if maxIters <= 0 {
		maxIters = 3000
	}
	tol := s.Tol
	if tol <= 0 {
		tol = 0.01
	}

	c, n := prob.C(), prob.N()
	nnz := sp.NNZ()
	par := opt.NewParallel(s.Parallelism).Gate(nnz)

	mu := make([]float64, c)
	locals := make([]*LocalProblem, n)
	for j := 0; j < n; j++ {
		locals[j] = &LocalProblem{
			Replica: prob.System.Replicas[j],
			Mu:      mu, // shared slice: replicas read the latest multipliers
			Demands: prob.Demands,
			Clients: sp.RowIdx[sp.ColStart[j]:sp.ColStart[j+1]:sp.ColStart[j+1]],
		}
	}

	res := &solver.Result{}
	primal := make([]float64, nnz) // CSR layout
	avg := make([]float64, nnz)
	rows := make([]float64, c)
	loads := make([]float64, n)
	windowStart := 1

	for k := 1; k <= maxIters; k++ {
		// Per-replica packed water-filling; each writes its own CSC column
		// slots scattered into the CSR primal via PosCSR (disjoint per
		// replica, so the fan-out stays bit-identical).
		if err := par.ForBalancedErr(n, sp.ColStart, func(_, lo, hi int) error {
			for j := lo; j < hi; j++ {
				col, err := SolveLocalPacked(locals[j])
				if err != nil {
					return fmt.Errorf("lddm: replica %d local solve: %w", j, err)
				}
				base := sp.ColStart[j]
				for idx, v := range col {
					primal[sp.PosCSR[base+idx]] = v
				}
			}
			return nil
		}); err != nil {
			return nil, err
		}
		// μ update from each client's packed served total.
		d := step(k)
		packedRowSums(sp, primal, rows)
		for i := 0; i < c; i++ {
			mu[i] += d * (rows[i] - prob.Demands[i])
		}
		// Doubling suffix average on the packed iterate.
		if k == windowStart*2 {
			windowStart = k
			opt.VecFill(avg, 0)
		}
		w := k - windowStart + 1
		opt.VecScale(avg, float64(w-1)/float64(w))
		opt.VecAXPY(avg, 1/float64(w), primal)

		maxRel := math.Inf(1)
		if w >= 64 {
			maxRel = packedDemandResidual(sp, avg, prob.Demands, rows)
		}

		// Communication accounting: only supported client–replica pairs
		// exchange scalars, so both directions carry nnz each.
		res.Comm.Messages += 2 * nnz
		res.Comm.Scalars += 2 * nnz
		res.Iterations = k

		if s.FeasibleHistory {
			repaired := opt.NewMatrix(c, n)
			sp.Scatter(repaired, avg)
			if err := opt.ProjectFeasibleSp(prob, repaired, 1e-4, par); err != nil {
				return nil, fmt.Errorf("lddm: history repair at iteration %d: %w", k, err)
			}
			res.History = append(res.History, prob.Cost(repaired))
		} else {
			res.History = append(res.History, packedNormalizedCost(prob, sp, primal, rows, loads))
		}

		if maxRel <= tol {
			res.Converged = true
			break
		}
	}

	// Primal recovery from the packed ergodic average.
	final := opt.NewMatrix(c, n)
	sp.Scatter(final, avg)
	if err := opt.ProjectFeasibleSp(prob, final, 1e-6, par); err != nil {
		return nil, fmt.Errorf("lddm: primal recovery: %w", err)
	}
	res.Assignment = final
	res.Objective = prob.Cost(final)
	return res, nil
}
