package donar

import (
	"testing"

	"edr/internal/opt"
	"edr/internal/probgen"
	"edr/internal/sim"
	"edr/internal/solver"
)

func TestDONARName(t *testing.T) {
	if New().Name() != "DONAR" {
		t.Fatalf("Name = %q", New().Name())
	}
}

func TestDONARFeasibleSolution(t *testing.T) {
	r := sim.NewRand(1)
	prob, err := probgen.MustFeasible(r, probgen.Spec{Clients: 9, Replicas: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := New().Solve(prob)
	if err != nil {
		t.Fatal(err)
	}
	if err := solver.Verify(prob, res, 1e-6); err != nil {
		t.Fatal(err)
	}
	if !res.Converged && res.Iterations < 60 {
		t.Fatalf("stopped at %d rounds without converging", res.Iterations)
	}
}

func TestDONARPrefersLowLatency(t *testing.T) {
	r := sim.NewRand(3)
	prob, err := probgen.MustFeasible(r, probgen.Spec{Clients: 1, Replicas: 3, Demands: []float64{30}})
	if err != nil {
		t.Fatal(err)
	}
	prob.Latency[0][0] = 0.0002 // clearly nearest
	prob.Latency[0][1] = 0.0015
	prob.Latency[0][2] = 0.0015
	res, err := New().Solve(prob)
	if err != nil {
		t.Fatal(err)
	}
	if res.Assignment[0][0] < 25 {
		t.Fatalf("nearest replica got %g of 30", res.Assignment[0][0])
	}
}

func TestDONAREnergyOblivious(t *testing.T) {
	// Same topology/demands, different prices → identical assignments.
	rA := sim.NewRand(5)
	probA, err := probgen.MustFeasible(rA, probgen.Spec{
		Clients: 4, Replicas: 3, Prices: []float64{1, 1, 1}, Demands: []float64{25, 15, 30, 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	rB := sim.NewRand(5)
	probB, err := probgen.MustFeasible(rB, probgen.Spec{
		Clients: 4, Replicas: 3, Prices: []float64{20, 1, 7}, Demands: []float64{25, 15, 30, 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	resA, err := New().Solve(probA)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := New().Solve(probB)
	if err != nil {
		t.Fatal(err)
	}
	if d := opt.Dist(resA.Assignment, resB.Assignment); d > 1e-9 {
		t.Fatalf("DONAR reacted to prices: distance %g", d)
	}
}

func TestDONARRespectsCapacityUnderPressure(t *testing.T) {
	r := sim.NewRand(7)
	prob, err := probgen.MustFeasible(r, probgen.Spec{
		Clients: 4, Replicas: 2, Demands: []float64{60, 60, 40, 30},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := New().Solve(prob)
	if err != nil {
		t.Fatal(err)
	}
	loads := opt.ColSums(res.Assignment)
	for n, load := range loads {
		if load > prob.System.Replicas[n].Bandwidth+1e-6 {
			t.Fatalf("replica %d load %g over cap", n, load)
		}
	}
}

func TestDONARCommGrowsWithMappingNodes(t *testing.T) {
	r := sim.NewRand(9)
	prob, err := probgen.MustFeasible(r, probgen.Spec{Clients: 12, Replicas: 4})
	if err != nil {
		t.Fatal(err)
	}
	perIter := func(m int) int {
		s := New()
		s.MappingNodes = m
		res, err := s.Solve(prob)
		if err != nil {
			t.Fatal(err)
		}
		return res.Comm.Scalars / res.Iterations
	}
	three := perIter(3)
	six := perIter(6)
	if six <= three {
		t.Fatalf("scalars/iter did not grow with |M|: %d vs %d", three, six)
	}
}

func TestDONARSingleMappingNode(t *testing.T) {
	r := sim.NewRand(11)
	prob, err := probgen.MustFeasible(r, probgen.Spec{Clients: 5, Replicas: 3})
	if err != nil {
		t.Fatal(err)
	}
	s := New()
	s.MappingNodes = 1
	res, err := s.Solve(prob)
	if err != nil {
		t.Fatal(err)
	}
	if err := solver.Verify(prob, res, 1e-6); err != nil {
		t.Fatal(err)
	}
}

func TestDONARMoreMappingNodesThanClients(t *testing.T) {
	r := sim.NewRand(13)
	prob, err := probgen.MustFeasible(r, probgen.Spec{Clients: 2, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := New()
	s.MappingNodes = 5
	res, err := s.Solve(prob)
	if err != nil {
		t.Fatal(err)
	}
	if err := solver.Verify(prob, res, 1e-6); err != nil {
		t.Fatal(err)
	}
}

func TestDONARGeoMaskRespected(t *testing.T) {
	r := sim.NewRand(17)
	prob, err := probgen.MustFeasible(r, probgen.Spec{Clients: 10, Replicas: 5, Geo: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := New().Solve(prob)
	if err != nil {
		t.Fatal(err)
	}
	mask := prob.Allowed()
	for c := range res.Assignment {
		for n, v := range res.Assignment[c] {
			if !mask[c][n] && v > 1e-9 {
				t.Fatalf("masked entry [%d][%d] = %g", c, n, v)
			}
		}
	}
}

func TestDONARInfeasibleRejected(t *testing.T) {
	r := sim.NewRand(19)
	prob, err := probgen.New(r, probgen.Spec{Clients: 1, Replicas: 1, Demands: []float64{500}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New().Solve(prob); err == nil {
		t.Fatal("infeasible instance accepted")
	}
}
