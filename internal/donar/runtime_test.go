package donar

import (
	"context"
	"math"
	"sync"
	"testing"

	"edr/internal/transport"
)

// donarFleet wires mapping nodes and client sinks on an in-process fabric.
type donarFleet struct {
	net     *transport.InProcNetwork
	nodes   []*MappingNode
	clients map[string]*allocSink
}

// allocSink records allocations a client receives and holds the client's
// transport endpoint for submitting requests.
type allocSink struct {
	submitNode transport.Node
	mu         sync.Mutex
	allocs     []AllocationBody
}

func (s *allocSink) handle(ctx context.Context, req transport.Message) (transport.Message, error) {
	if req.Type != MsgAllocation {
		return transport.Message{Type: "ok"}, nil
	}
	var body AllocationBody
	if err := req.DecodeBody(&body); err != nil {
		return transport.Message{}, err
	}
	s.mu.Lock()
	s.allocs = append(s.allocs, body)
	s.mu.Unlock()
	return transport.NewMessage(MsgAllocation+".ack", "", nil)
}

func (s *allocSink) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.allocs)
}

func (s *allocSink) total() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	sum := 0.0
	for _, a := range s.allocs {
		for _, mb := range a.PerReplicaMB {
			sum += mb
		}
	}
	return sum
}

func newDonarFleet(t *testing.T, mappingNodes int, clientNames []string) *donarFleet {
	t.Helper()
	f := &donarFleet{net: transport.NewInProcNetwork(), clients: map[string]*allocSink{}}
	for m := 0; m < mappingNodes; m++ {
		node, err := NewMappingNode(f.net, nodeName(m))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { node.Close() })
		f.nodes = append(f.nodes, node)
	}
	for _, name := range clientNames {
		sink := &allocSink{}
		node, err := f.net.Listen(name, sink.handle)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { node.Close() })
		sink.submitNode = node
		f.clients[name] = sink
	}
	return f
}

func nodeName(m int) string { return "mapping" + string(rune('1'+m)) }

func TestDonarRuntimeEndToEnd(t *testing.T) {
	clients := []string{"dc1", "dc2", "dc3", "dc4"}
	f := newDonarFleet(t, 3, clients)
	replicas := []ReplicaSpec{
		{Addr: "replicaA", BandwidthMBps: 100},
		{Addr: "replicaB", BandwidthMBps: 100},
	}
	lat := map[string]float64{"replicaA": 0.0004, "replicaB": 0.0009}
	ctx := context.Background()
	demand := map[string]float64{"dc1": 30, "dc2": 20, "dc3": 25, "dc4": 10}
	for i, name := range clients {
		sink := f.clients[name]
		if err := SubmitRequest(ctx, sink.submitNode, f.nodes[i%3].Addr(), demand[name], lat); err != nil {
			t.Fatal(err)
		}
	}
	peers := []string{f.nodes[1].Addr(), f.nodes[2].Addr()}
	report, err := f.nodes[0].RunEpoch(ctx, peers, replicas, 5)
	if err != nil {
		t.Fatal(err)
	}
	if report.Requests != 4 {
		t.Fatalf("epoch saw %d requests, want 4", report.Requests)
	}
	// Every client got exactly one allocation totalling its demand.
	for name, sink := range f.clients {
		if sink.count() != 1 {
			t.Fatalf("client %s received %d allocations", name, sink.count())
		}
		if got := sink.total(); math.Abs(got-demand[name]) > 1e-9 {
			t.Fatalf("client %s allocated %g, want %g", name, got, demand[name])
		}
	}
	// Aggregate loads account for all demand, under capacity.
	total := 0.0
	for j, l := range report.Loads {
		if l > replicas[j].BandwidthMBps+1e-9 {
			t.Fatalf("replica %d over capacity: %g", j, l)
		}
		total += l
	}
	if math.Abs(total-85) > 1e-9 {
		t.Fatalf("total load %g, want 85", total)
	}
	// Low-latency replica carries more.
	if report.Loads[0] <= report.Loads[1] {
		t.Fatalf("latency preference missing: loads %v", report.Loads)
	}
	// Queues drained.
	for _, node := range f.nodes {
		if node.Pending() != 0 {
			t.Fatalf("node %s still has pending requests", node.Addr())
		}
	}
}

func TestDonarRuntimeEmptyEpoch(t *testing.T) {
	f := newDonarFleet(t, 2, nil)
	ctx := context.Background()
	if _, err := f.nodes[0].RunEpoch(ctx, []string{f.nodes[1].Addr()}, []ReplicaSpec{{Addr: "r", BandwidthMBps: 100}}, 3); err == nil {
		t.Fatal("empty epoch succeeded")
	}
}

func TestDonarRuntimeRejectsBadRequests(t *testing.T) {
	f := newDonarFleet(t, 1, []string{"dc1"})
	ctx := context.Background()
	sink := f.clients["dc1"]
	if err := SubmitRequest(ctx, sink.submitNode, f.nodes[0].Addr(), -1, nil); err == nil {
		t.Fatal("negative demand accepted")
	}
	msg, _ := transport.NewMessage("donar.bogus", "dc1", nil)
	if _, err := sink.submitNode.Send(ctx, f.nodes[0].Addr(), msg); err == nil {
		t.Fatal("bogus type accepted")
	}
}

func TestDonarRuntimeCapacityPressure(t *testing.T) {
	clients := []string{"dc1", "dc2"}
	f := newDonarFleet(t, 2, clients)
	replicas := []ReplicaSpec{
		{Addr: "near", BandwidthMBps: 50},
		{Addr: "far", BandwidthMBps: 100},
	}
	lat := map[string]float64{"near": 0.0002, "far": 0.0012}
	ctx := context.Background()
	for i, name := range clients {
		if err := SubmitRequest(ctx, f.clients[name].submitNode, f.nodes[i].Addr(), 60, lat); err != nil {
			t.Fatal(err)
		}
	}
	report, err := f.nodes[0].RunEpoch(ctx, []string{f.nodes[1].Addr()}, replicas, 8)
	if err != nil {
		t.Fatal(err)
	}
	if report.Loads[0] > 50+1e-9 {
		t.Fatalf("near replica over its 50 MB cap: %g", report.Loads[0])
	}
	if math.Abs(report.Loads[0]+report.Loads[1]-120) > 1e-9 {
		t.Fatalf("loads %v don't cover demand 120", report.Loads)
	}
}

func TestDonarRuntimeUnplaceable(t *testing.T) {
	f := newDonarFleet(t, 1, []string{"dc1"})
	ctx := context.Background()
	// Demand exceeds total capacity.
	lat := map[string]float64{"r": 0.0005}
	if err := SubmitRequest(ctx, f.clients["dc1"].submitNode, f.nodes[0].Addr(), 200, lat); err != nil {
		t.Fatal(err)
	}
	_, err := f.nodes[0].RunEpoch(ctx, nil, []ReplicaSpec{{Addr: "r", BandwidthMBps: 100}}, 3)
	if err == nil {
		t.Fatal("unplaceable demand succeeded")
	}
}
