package donar

import (
	"context"
	"fmt"
	"sync"

	"edr/internal/model"
	"edr/internal/netsim"
	"edr/internal/transport"
)

// Live DONAR runtime: mapping-node servers over a message fabric,
// mirroring the deployment of Wendell et al. Clients submit requests to
// their assigned mapping node; an epoch (triggered on any node) runs the
// decomposition as real message exchanges — every node re-solves its
// clients' placement given the other nodes' gossiped per-replica
// aggregates, Gauss-Seidel style — and each node then delivers the
// allocations to its own clients. This is the system measured against the
// full EDR runtime in Fig 9.

// Message types of the DONAR wire protocol.
const (
	// MsgRequest is client → mapping node: submit a demand.
	MsgRequest = "donar.request"
	// MsgCollect is initiator → mapping node: snapshot pending requests.
	MsgCollect = "donar.collect"
	// MsgLocalSolve is initiator → mapping node: re-place your clients
	// given the other nodes' aggregate loads.
	MsgLocalSolve = "donar.localsolve"
	// MsgNotify is initiator → mapping node: deliver allocations to your
	// clients.
	MsgNotify = "donar.notify"
	// MsgAllocation is mapping node → client: the final split.
	MsgAllocation = "donar.allocation"
)

// ReplicaSpec describes one backend replica to the mapping layer. DONAR
// needs only capacity — it is energy-oblivious by design.
type ReplicaSpec struct {
	Addr          string  `json:"addr"`
	BandwidthMBps float64 `json:"bandwidth_mbps"`
}

// requestBody is the MsgRequest payload.
type requestBody struct {
	ClientAddr string             `json:"client_addr"`
	DemandMB   float64            `json:"demand_mb"`
	LatencySec map[string]float64 `json:"latency_sec"`
}

// collectReply returns a node's pending requests.
type collectReply struct {
	Requests []requestBody `json:"requests"`
}

// localSolveBody carries the peers' aggregate loads per replica (column
// order of the epoch's replica list).
type localSolveBody struct {
	Epoch      int           `json:"epoch"`
	Replicas   []ReplicaSpec `json:"replicas"`
	OtherLoads []float64     `json:"other_loads"`
	Requests   []requestBody `json:"requests"`
}

// localSolveReply returns the node's per-client placements and its own
// aggregate contribution.
type localSolveReply struct {
	// Assignments[i] maps replica address → MB for request i.
	Assignments []map[string]float64 `json:"assignments"`
	// Loads is this node's per-replica aggregate (column order).
	Loads []float64 `json:"loads"`
}

// notifyBody asks a node to push allocations to its clients.
type notifyBody struct {
	Epoch       int                  `json:"epoch"`
	ClientAddrs []string             `json:"client_addrs"`
	Allocations []map[string]float64 `json:"allocations"`
}

// AllocationBody is what a client receives.
type AllocationBody struct {
	Epoch        int                `json:"epoch"`
	PerReplicaMB map[string]float64 `json:"per_replica_mb"`
}

// MappingNode is one DONAR coordinator.
type MappingNode struct {
	node  transport.Node
	kappa float64

	mu      sync.Mutex
	pending []requestBody
}

// NewMappingNode binds a mapping node on the fabric.
func NewMappingNode(network transport.Network, addr string) (*MappingNode, error) {
	m := &MappingNode{kappa: 1e-4}
	node, err := network.Listen(addr, m.handle)
	if err != nil {
		return nil, err
	}
	m.node = node
	return m, nil
}

// Addr returns the node's fabric address.
func (m *MappingNode) Addr() string { return m.node.Name() }

// Close releases the endpoint.
func (m *MappingNode) Close() error { return m.node.Close() }

// Pending reports the queue depth.
func (m *MappingNode) Pending() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.pending)
}

func (m *MappingNode) handle(ctx context.Context, req transport.Message) (transport.Message, error) {
	switch req.Type {
	case MsgRequest:
		var body requestBody
		if err := req.DecodeBody(&body); err != nil {
			return transport.Message{}, err
		}
		if body.ClientAddr == "" || body.DemandMB <= 0 {
			return transport.Message{}, fmt.Errorf("donar: bad request from %s", req.From)
		}
		m.mu.Lock()
		m.pending = append(m.pending, body)
		m.mu.Unlock()
		return transport.NewMessage(MsgRequest+".ack", m.Addr(), nil)
	case MsgCollect:
		m.mu.Lock()
		out := make([]requestBody, len(m.pending))
		copy(out, m.pending)
		m.pending = nil
		m.mu.Unlock()
		return transport.NewMessage(MsgCollect+".ack", m.Addr(), collectReply{Requests: out})
	case MsgLocalSolve:
		var body localSolveBody
		if err := req.DecodeBody(&body); err != nil {
			return transport.Message{}, err
		}
		reply, err := m.localSolve(&body)
		if err != nil {
			return transport.Message{}, err
		}
		return transport.NewMessage(MsgLocalSolve+".ack", m.Addr(), reply)
	case MsgNotify:
		var body notifyBody
		if err := req.DecodeBody(&body); err != nil {
			return transport.Message{}, err
		}
		for i, addr := range body.ClientAddrs {
			alloc := AllocationBody{Epoch: body.Epoch, PerReplicaMB: body.Allocations[i]}
			msg, err := transport.NewMessage(MsgAllocation, m.Addr(), alloc)
			if err != nil {
				return transport.Message{}, err
			}
			// Client failures don't fail the epoch.
			_, _ = m.node.Send(ctx, addr, msg)
		}
		return transport.NewMessage(MsgNotify+".ack", m.Addr(), nil)
	default:
		return transport.Message{}, fmt.Errorf("donar: mapping node %s: unknown message %q", m.Addr(), req.Type)
	}
}

// localSolve re-places this node's requests greedily at the lowest
// marginal latency + load-penalty cost — the same local rule as the
// in-process Solver, given the gossiped aggregate state.
func (m *MappingNode) localSolve(body *localSolveBody) (*localSolveReply, error) {
	n := len(body.Replicas)
	if len(body.OtherLoads) != n {
		return nil, fmt.Errorf("donar: %d aggregates for %d replicas", len(body.OtherLoads), n)
	}
	load := make([]float64, n)
	copy(load, body.OtherLoads)
	reply := &localSolveReply{
		Assignments: make([]map[string]float64, len(body.Requests)),
		Loads:       make([]float64, n),
	}
	const chunks = 20
	for i, req := range body.Requests {
		assignment := make(map[string]float64, n)
		remaining := req.DemandMB
		chunk := remaining / chunks
		for remaining > 1e-12 {
			take := chunk
			if take > remaining {
				take = remaining
			}
			best := -1
			bestCost := 0.0
			for j, rep := range body.Replicas {
				lat, ok := req.LatencySec[rep.Addr]
				if !ok || lat > netsim.DefaultMaxLatency.Seconds() {
					continue
				}
				if rep.BandwidthMBps-load[j] < take-1e-12 {
					continue
				}
				cost := lat + 2*m.kappa*load[j]/rep.BandwidthMBps
				if best == -1 || cost < bestCost {
					best, bestCost = j, cost
				}
			}
			if best == -1 {
				return nil, fmt.Errorf("donar: request from %s has %g MB unplaceable", req.ClientAddr, remaining)
			}
			assignment[body.Replicas[best].Addr] += take
			load[best] += take
			reply.Loads[best] += take
			remaining -= take
		}
		reply.Assignments[i] = assignment
	}
	return reply, nil
}

// EpochReport summarizes one completed DONAR epoch.
type EpochReport struct {
	Epoch    int
	Rounds   int
	Requests int
	// Loads is the final per-replica aggregate (column order of Replicas).
	Replicas []ReplicaSpec
	Loads    []float64
}

// RunEpoch drives one decomposition epoch from this node across all
// mapping nodes: collect pending requests everywhere, run `rounds`
// Gauss-Seidel passes of local re-solves with aggregate gossip, then have
// every node notify its clients.
func (m *MappingNode) RunEpoch(ctx context.Context, peers []string, replicas []ReplicaSpec, rounds int) (*EpochReport, error) {
	if rounds <= 0 {
		rounds = 10
	}
	all := append([]string{m.Addr()}, peers...)
	n := len(replicas)

	// 1. Collect each node's pending requests.
	perNode := make([][]requestBody, len(all))
	total := 0
	for i, addr := range all {
		msg, err := transport.NewMessage(MsgCollect, m.Addr(), nil)
		if err != nil {
			return nil, err
		}
		resp, err := m.node.Send(ctx, addr, msg)
		if err != nil {
			return nil, fmt.Errorf("donar: collect from %s: %w", addr, err)
		}
		var reply collectReply
		if err := resp.DecodeBody(&reply); err != nil {
			return nil, err
		}
		perNode[i] = reply.Requests
		total += len(reply.Requests)
	}
	if total == 0 {
		return nil, fmt.Errorf("donar: no pending requests")
	}

	// 2. Gauss-Seidel rounds: each node re-solves given the others' loads.
	nodeLoads := make([][]float64, len(all))
	nodeAssignments := make([][]map[string]float64, len(all))
	for i := range nodeLoads {
		nodeLoads[i] = make([]float64, n)
	}
	epoch := 1
	for round := 0; round < rounds; round++ {
		for i, addr := range all {
			if len(perNode[i]) == 0 {
				continue
			}
			others := make([]float64, n)
			for k := range all {
				if k == i {
					continue
				}
				for j := 0; j < n; j++ {
					others[j] += nodeLoads[k][j]
				}
			}
			body := localSolveBody{Epoch: epoch, Replicas: replicas, OtherLoads: others, Requests: perNode[i]}
			msg, err := transport.NewMessage(MsgLocalSolve, m.Addr(), body)
			if err != nil {
				return nil, err
			}
			resp, err := m.node.Send(ctx, addr, msg)
			if err != nil {
				return nil, fmt.Errorf("donar: local solve on %s: %w", addr, err)
			}
			var reply localSolveReply
			if err := resp.DecodeBody(&reply); err != nil {
				return nil, err
			}
			nodeLoads[i] = reply.Loads
			nodeAssignments[i] = reply.Assignments
		}
	}

	// 3. Deliver allocations through each owning node.
	for i, addr := range all {
		if len(perNode[i]) == 0 {
			continue
		}
		clients := make([]string, len(perNode[i]))
		for k, req := range perNode[i] {
			clients[k] = req.ClientAddr
		}
		body := notifyBody{Epoch: epoch, ClientAddrs: clients, Allocations: nodeAssignments[i]}
		msg, err := transport.NewMessage(MsgNotify, m.Addr(), body)
		if err != nil {
			return nil, err
		}
		if _, err := m.node.Send(ctx, addr, msg); err != nil {
			return nil, fmt.Errorf("donar: notify via %s: %w", addr, err)
		}
	}

	report := &EpochReport{Epoch: epoch, Rounds: rounds, Requests: total, Replicas: replicas, Loads: make([]float64, n)}
	for i := range all {
		for j := 0; j < n; j++ {
			report.Loads[j] += nodeLoads[i][j]
		}
	}
	return report, nil
}

// SubmitRequest is the client-side helper: send a demand to a mapping
// node from the given client endpoint.
func SubmitRequest(ctx context.Context, client transport.Node, mappingNode string, demandMB float64, latencies map[string]float64) error {
	body := requestBody{ClientAddr: client.Name(), DemandMB: demandMB, LatencySec: latencies}
	msg, err := transport.NewMessage(MsgRequest, client.Name(), body)
	if err != nil {
		return err
	}
	if _, err := client.Send(ctx, mappingNode, msg); err != nil {
		return fmt.Errorf("donar: submit to %s: %w", mappingNode, err)
	}
	return nil
}

// SpecsFromSystem converts a model system + addresses into ReplicaSpecs.
func SpecsFromSystem(sys *model.System, addrs []string) ([]ReplicaSpec, error) {
	if len(addrs) != sys.N() {
		return nil, fmt.Errorf("donar: %d addresses for %d replicas", len(addrs), sys.N())
	}
	specs := make([]ReplicaSpec, sys.N())
	for j, rep := range sys.Replicas {
		specs[j] = ReplicaSpec{Addr: addrs[j], BandwidthMBps: rep.Bandwidth}
	}
	return specs, nil
}
