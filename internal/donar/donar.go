// Package donar reimplements the decentralized replica-selection scheme of
// DONAR (Wendell, Jiang, Freedman & Rexford, "DONAR: decentralized server
// selection for cloud services", SIGCOMM 2010) at the fidelity the paper's
// Fig. 9 comparison requires.
//
// DONAR interposes a set of mapping nodes between clients and replicas.
// Each mapping node owns a partition of the clients and repeatedly solves
// a local assignment problem minimizing network performance cost (latency)
// under shared replica capacities, exchanging per-replica aggregate loads
// with every other mapping node between rounds — a decomposition of the
// global problem whose per-round communication grows with the number of
// mapping nodes (O(|C|·|N|·|M|) scalars), versus EDR/LDDM's O(|C|·|N|).
// Energy price never enters DONAR's objective; that is precisely the gap
// EDR fills.
package donar

import (
	"fmt"

	"edr/internal/opt"
	"edr/internal/solver"
)

// Solver is a DONAR-style decentralized mapping-node scheduler.
type Solver struct {
	// MappingNodes is |M|, the number of distributed coordinators;
	// 0 means 3 (the paper's Fig. 9 setup).
	MappingNodes int
	// Rounds bounds Gauss-Seidel rounds over the mapping nodes;
	// 0 means 60.
	Rounds int
	// Kappa weights the load-balance penalty against raw latency cost;
	// 0 means 1e-4 (units: cost per MB² per MB/s of capacity).
	Kappa float64
	// Chunks is the number of pieces each client demand is split into
	// during greedy reassignment; 0 means 20.
	Chunks int
	// Tol declares convergence when a full round moves no assignment
	// entry more than Tol; 0 means 1e-6.
	Tol float64
}

// New returns a DONAR solver with the Fig. 9 defaults.
func New() *Solver { return &Solver{} }

// Name implements solver.Solver.
func (s *Solver) Name() string { return "DONAR" }

func (s *Solver) params() (m, rounds, chunks int, kappa, tol float64) {
	m = s.MappingNodes
	if m <= 0 {
		m = 3
	}
	rounds = s.Rounds
	if rounds <= 0 {
		rounds = 60
	}
	chunks = s.Chunks
	if chunks <= 0 {
		chunks = 20
	}
	kappa = s.Kappa
	if kappa <= 0 {
		kappa = 1e-4
	}
	tol = s.Tol
	if tol <= 0 {
		tol = 1e-6
	}
	return m, rounds, chunks, kappa, tol
}

// Solve implements solver.Solver.
func (s *Solver) Solve(prob *opt.Problem) (*solver.Result, error) {
	if err := prob.Validate(); err != nil {
		return nil, err
	}
	if err := opt.CheckFeasible(prob); err != nil {
		return nil, err
	}
	m, rounds, chunks, kappa, tol := s.params()
	c, n := prob.C(), prob.N()
	mask := prob.Allowed()

	// Partition clients round-robin across mapping nodes.
	partition := make([][]int, m)
	for i := 0; i < c; i++ {
		partition[i%m] = append(partition[i%m], i)
	}

	x := opt.NewMatrix(c, n)
	res := &solver.Result{}
	prev := opt.NewMatrix(c, n)

	for round := 1; round <= rounds; round++ {
		opt.Copy(prev, x)
		for node := 0; node < m; node++ {
			// Aggregate load contributed by the *other* mapping nodes —
			// the state DONAR nodes gossip each round.
			otherLoad := make([]float64, n)
			mine := make(map[int]bool, len(partition[node]))
			for _, i := range partition[node] {
				mine[i] = true
			}
			for i := 0; i < c; i++ {
				if mine[i] {
					continue
				}
				for j := 0; j < n; j++ {
					otherLoad[j] += x[i][j]
				}
			}
			// Local reassignment of this node's clients: clear and
			// greedily re-place demand chunks at the lowest marginal
			// latency + load-penalty cost.
			load := make([]float64, n)
			copy(load, otherLoad)
			for _, i := range partition[node] {
				for j := 0; j < n; j++ {
					x[i][j] = 0
				}
			}
			for _, i := range partition[node] {
				if err := s.placeClient(prob, mask, x, load, i, chunks, kappa); err != nil {
					return nil, err
				}
			}
		}
		// Communication accounting: every mapping node shares per-replica
		// aggregates with every other node, and refreshes per-client
		// assignment state across the mapping layer — the O(|C|·|N|·|M|)
		// behaviour the paper cites for DONAR.
		res.Comm.Messages += m * (m - 1)
		res.Comm.Scalars += m*(m-1)*n + c*n*m
		res.Iterations = round
		res.History = append(res.History, prob.Cost(x))
		if opt.Dist(prev, x) <= tol {
			res.Converged = true
			break
		}
	}

	if v := prob.Violation(x); v > 1e-6 {
		return nil, fmt.Errorf("donar: final assignment violates constraints by %g", v)
	}
	res.Assignment = x
	res.Objective = prob.Cost(x)
	return res, nil
}

// placeClient distributes client i's demand in chunks onto the replicas
// with the lowest marginal cost l_{c,n} + 2κ·load_n/B_n, respecting
// capacity and the latency mask. load is updated in place.
func (s *Solver) placeClient(prob *opt.Problem, mask [][]bool, x [][]float64, load []float64, i, chunks int, kappa float64) error {
	n := prob.N()
	remaining := prob.Demands[i]
	if remaining == 0 {
		return nil
	}
	chunk := remaining / float64(chunks)
	for remaining > 1e-12 {
		take := chunk
		if take > remaining {
			take = remaining
		}
		best := -1
		bestCost := 0.0
		for j := 0; j < n; j++ {
			if !mask[i][j] {
				continue
			}
			headroom := prob.System.Replicas[j].Bandwidth - load[j]
			if headroom < take-1e-12 {
				continue
			}
			cost := prob.Latency[i][j] + 2*kappa*load[j]/prob.System.Replicas[j].Bandwidth
			if best == -1 || cost < bestCost {
				best, bestCost = j, cost
			}
		}
		if best == -1 {
			// No replica fits a full chunk; try the largest placeable
			// remainder on the replica with the most headroom.
			for j := 0; j < n; j++ {
				if !mask[i][j] {
					continue
				}
				if head := prob.System.Replicas[j].Bandwidth - load[j]; head > 1e-12 {
					if best == -1 || head > prob.System.Replicas[best].Bandwidth-load[best] {
						best = j
					}
				}
			}
			if best == -1 {
				return fmt.Errorf("donar: client %d has %g MB unplaceable under capacity", i, remaining)
			}
			take = prob.System.Replicas[best].Bandwidth - load[best]
			if take > remaining {
				take = remaining
			}
		}
		x[i][best] += take
		load[best] += take
		remaining -= take
	}
	return nil
}
