package membership

import (
	"fmt"
	"sort"
)

// Action is what the autoscale policy wants done this window.
type Action int

const (
	// Hold keeps the current roster.
	Hold Action = iota
	// PowerDown drains Decision.Target (planned power-down).
	PowerDown
	// PowerUp undrains Decision.Target.
	PowerUp
)

// String returns the action's log name.
func (a Action) String() string {
	switch a {
	case PowerDown:
		return "power-down"
	case PowerUp:
		return "power-up"
	default:
		return "hold"
	}
}

// Decision is one window's autoscale verdict.
type Decision struct {
	Action Action
	// Target is the member to drain / undrain (empty for Hold).
	Target string
	// Util is the fleet utilization the decision was based on.
	Util float64
	// Reason explains the verdict for logs.
	Reason string
}

// Sample is one scheduling window's observation of the fleet.
type Sample struct {
	// LoadMB is the total demand scheduled in the window.
	LoadMB float64
	// CapacityMB maps member → serving capacity (bandwidth) per window.
	CapacityMB map[string]float64
	// Prices maps member → its current electricity tariff (¢/kWh); the
	// policy sheds the most expensive active capacity first and restores
	// the cheapest drained capacity first, which is where the paper's
	// price-diversity argument meets elasticity.
	Prices map[string]float64
	// Active and Drained are the current epoch's rosters.
	Active  []string
	Drained []string
}

// Policy is the energy-aware elasticity controller: it watches fleet
// utilization (load over active capacity) and, with hysteresis, drains
// replicas when the fleet runs cold and undrains them when it runs hot.
// Hysteresis follows the setup-cost framing of Mathew et al.'s
// energy-aware CDN work: capacity state changes are only worth their
// switching cost when the signal persists, so a threshold crossing must
// hold for several consecutive windows (UpAfter / DownAfter) and every
// action is followed by a cooldown during which the policy holds — the
// two together keep the fleet from flapping on a noisy diurnal edge.
//
// Policy keeps streak counters between Evaluate calls and is not safe
// for concurrent use; drive it from one control loop.
type Policy struct {
	// LowUtil and HighUtil bound the comfort band: utilization below
	// LowUtil argues for shedding capacity, above HighUtil for restoring
	// it. Zero values select 0.30 and 0.75.
	LowUtil  float64
	HighUtil float64
	// DownAfter / UpAfter are how many consecutive windows the signal
	// must persist before acting. Zero values select 3 and 2 — shedding
	// is lazier than restoring because running cold wastes money while
	// running hot sheds load.
	DownAfter int
	UpAfter   int
	// Cooldown is how many windows after any action the policy holds.
	// Zero selects 3; -1 means no cooldown.
	Cooldown int
	// MinActive is the active-roster floor PowerDown never crosses.
	// Zero selects 1.
	MinActive int

	lowStreak  int
	highStreak int
	cooldown   int
}

func (p *Policy) lowUtil() float64 {
	if p.LowUtil > 0 {
		return p.LowUtil
	}
	return 0.30
}

func (p *Policy) highUtil() float64 {
	if p.HighUtil > 0 {
		return p.HighUtil
	}
	return 0.75
}

func (p *Policy) downAfter() int {
	if p.DownAfter > 0 {
		return p.DownAfter
	}
	return 3
}

func (p *Policy) upAfter() int {
	if p.UpAfter > 0 {
		return p.UpAfter
	}
	return 2
}

func (p *Policy) cooldownWindows() int {
	if p.Cooldown > 0 {
		return p.Cooldown
	}
	if p.Cooldown < 0 {
		return 0
	}
	return 3
}

func (p *Policy) minActive() int {
	if p.MinActive > 0 {
		return p.MinActive
	}
	return 1
}

// Evaluate consumes one window's sample and returns the verdict. The
// caller applies PowerDown / PowerUp via Manager.ProposeChange (OpDrain /
// OpUndrain) and feeds the next window back in.
func (p *Policy) Evaluate(s Sample) Decision {
	capacity := 0.0
	for _, m := range s.Active {
		capacity += s.CapacityMB[m]
	}
	util := 0.0
	if capacity > 0 {
		util = s.LoadMB / capacity
	}
	if p.cooldown > 0 {
		p.cooldown--
	}
	switch {
	case util < p.lowUtil():
		p.lowStreak++
		p.highStreak = 0
	case util > p.highUtil():
		p.highStreak++
		p.lowStreak = 0
	default:
		p.lowStreak, p.highStreak = 0, 0
	}
	if p.cooldown > 0 {
		return Decision{Action: Hold, Util: util, Reason: fmt.Sprintf("cooldown (%d windows left)", p.cooldown)}
	}
	if p.lowStreak >= p.downAfter() && len(s.Active) > p.minActive() {
		target := pickByPrice(s.Active, s.Prices, true)
		if target != "" {
			p.lowStreak = 0
			p.cooldown = p.cooldownWindows()
			return Decision{
				Action: PowerDown,
				Target: target,
				Util:   util,
				Reason: fmt.Sprintf("utilization %.2f below %.2f for %d windows; shedding priciest active member", util, p.lowUtil(), p.downAfter()),
			}
		}
	}
	if p.highStreak >= p.upAfter() && len(s.Drained) > 0 {
		target := pickByPrice(s.Drained, s.Prices, false)
		if target != "" {
			p.highStreak = 0
			p.cooldown = p.cooldownWindows()
			return Decision{
				Action: PowerUp,
				Target: target,
				Util:   util,
				Reason: fmt.Sprintf("utilization %.2f above %.2f for %d windows; restoring cheapest drained member", util, p.highUtil(), p.upAfter()),
			}
		}
	}
	return Decision{Action: Hold, Util: util}
}

// pickByPrice selects the highest-priced (max=true) or lowest-priced
// member; ties and missing prices break deterministically by name.
func pickByPrice(members []string, prices map[string]float64, max bool) string {
	if len(members) == 0 {
		return ""
	}
	sorted := append([]string(nil), members...)
	sort.Strings(sorted)
	best := sorted[0]
	for _, m := range sorted[1:] {
		if max && prices[m] > prices[best] {
			best = m
		} else if !max && prices[m] < prices[best] {
			best = m
		}
	}
	return best
}
