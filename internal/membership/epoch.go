// Package membership makes the EDR fleet's replica set a first-class,
// live-reconfigurable dimension. The paper's energy argument — turn
// capacity off when tariffs and load are low, back on when they rise —
// only pays off if the roster can actually change at runtime; internal/
// ring alone can merely shrink when the failure detector prunes a dead
// peer. This package adds the planned path: numbered cluster epochs
// proposed by any member, disseminated over the existing transport with
// an ack quorum, and applied by rebuilding the shared ring.Ring. A member
// can join, be drained (kept alive and heartbeating but excluded from new
// scheduling rounds — the power-down half of the energy policy), undrain,
// or leave, all without dropping an in-flight round: the runtime
// warm-starts the next round from the last-known-good assignment
// renormalized over the new replica set (opt.Renormalize).
//
// Drain vs. failure: a drained member is deliberately passive, a failed
// member is involuntarily gone. The ring monitor must never confuse the
// two — see ring.Monitor.Drained.
package membership

import (
	"fmt"
	"sort"
)

// Epoch is one numbered cluster configuration: the full member list and
// the subset currently drained. Epochs are totally ordered by Seq; a node
// accepts an epoch iff it is newer than the one it holds, so dissemination
// is idempotent and stragglers converge from any later proposal.
type Epoch struct {
	// Seq is the configuration's sequence number, starting at 1 for the
	// first proposed change (0 is the bootstrap configuration).
	Seq int `json:"seq"`
	// Members is the full sorted member list (transport addresses).
	Members []string `json:"members"`
	// Drained lists members excluded from new scheduling rounds while
	// still alive, heartbeating, and serving previously installed plans.
	// Always a subset of Members.
	Drained []string `json:"drained,omitempty"`
}

// normalize sorts and dedups both lists in place.
func (e *Epoch) normalize() {
	e.Members = sortedUnique(e.Members)
	e.Drained = sortedUnique(e.Drained)
}

func sortedUnique(in []string) []string {
	seen := make(map[string]bool, len(in))
	var out []string
	for _, s := range in {
		if s != "" && !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

// Validate checks the epoch's structural invariants.
func (e *Epoch) Validate() error {
	if e.Seq < 0 {
		return fmt.Errorf("membership: epoch seq %d < 0", e.Seq)
	}
	if len(e.Members) == 0 {
		return fmt.Errorf("membership: epoch %d has no members", e.Seq)
	}
	members := make(map[string]bool, len(e.Members))
	for _, m := range e.Members {
		if m == "" {
			return fmt.Errorf("membership: epoch %d has an empty member name", e.Seq)
		}
		if members[m] {
			return fmt.Errorf("membership: epoch %d lists %s twice", e.Seq, m)
		}
		members[m] = true
	}
	for _, d := range e.Drained {
		if !members[d] {
			return fmt.Errorf("membership: epoch %d drains non-member %s", e.Seq, d)
		}
	}
	if len(e.Active()) == 0 {
		return fmt.Errorf("membership: epoch %d drains every member", e.Seq)
	}
	return nil
}

// IsDrained reports whether member is drained in this epoch.
func (e *Epoch) IsDrained(member string) bool {
	for _, d := range e.Drained {
		if d == member {
			return true
		}
	}
	return false
}

// Active returns the members eligible for new scheduling rounds: Members
// minus Drained, in sorted order.
func (e *Epoch) Active() []string {
	out := make([]string, 0, len(e.Members))
	for _, m := range e.Members {
		if !e.IsDrained(m) {
			out = append(out, m)
		}
	}
	return out
}

// Equal reports whether two epochs describe the same configuration
// (sequence included).
func (e *Epoch) Equal(o *Epoch) bool {
	if e.Seq != o.Seq || len(e.Members) != len(o.Members) || len(e.Drained) != len(o.Drained) {
		return false
	}
	for i := range e.Members {
		if e.Members[i] != o.Members[i] {
			return false
		}
	}
	for i := range e.Drained {
		if e.Drained[i] != o.Drained[i] {
			return false
		}
	}
	return true
}

// clone deep-copies the epoch.
func (e *Epoch) clone() Epoch {
	return Epoch{
		Seq:     e.Seq,
		Members: append([]string(nil), e.Members...),
		Drained: append([]string(nil), e.Drained...),
	}
}

// Wire protocol. Owners route both verbs to the Manager's handlers, like
// the ring monitor's heartbeat/death verbs.
const (
	// EpochType is coordinator → member: apply a committed epoch.
	EpochType = "membership.epoch"
	// ProposeType is anyone → member: build and disseminate the next
	// epoch for a join/drain/undrain/remove operation. The receiving
	// member acts as the coordinator.
	ProposeType = "membership.propose"
)

// EpochBody carries a disseminated epoch.
type EpochBody struct {
	Epoch Epoch `json:"epoch"`
}

// EpochAck is the member's reply: Accepted when the epoch was applied (or
// already held verbatim); otherwise Seq tells the coordinator the newer
// sequence the member holds, so a stale proposer can catch up.
type EpochAck struct {
	Seq      int  `json:"seq"`
	Accepted bool `json:"accepted"`
}

// Op names a membership change a ProposeBody requests.
type Op string

const (
	// OpJoin admits Addr as a member (and clears any drain on it).
	OpJoin Op = "join"
	// OpDrain marks Addr drained: alive but out of new rounds.
	OpDrain Op = "drain"
	// OpUndrain returns a drained Addr to active duty.
	OpUndrain Op = "undrain"
	// OpRemove deletes Addr from the member list entirely.
	OpRemove Op = "remove"
)

// ProposeBody asks the receiving member to coordinate a membership change.
type ProposeBody struct {
	Op   Op     `json:"op"`
	Addr string `json:"addr"`
}

// ProposeReply returns the epoch the coordinator committed.
type ProposeReply struct {
	Epoch Epoch `json:"epoch"`
}
