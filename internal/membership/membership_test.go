package membership

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"edr/internal/ring"
	"edr/internal/telemetry"
	"edr/internal/transport"
)

func TestEpochValidate(t *testing.T) {
	cases := []struct {
		name string
		e    Epoch
		ok   bool
	}{
		{"valid", Epoch{Seq: 1, Members: []string{"a", "b"}, Drained: []string{"b"}}, true},
		{"no members", Epoch{Seq: 1}, false},
		{"negative seq", Epoch{Seq: -1, Members: []string{"a"}}, false},
		{"drains non-member", Epoch{Seq: 1, Members: []string{"a"}, Drained: []string{"b"}}, false},
		{"drains everyone", Epoch{Seq: 1, Members: []string{"a"}, Drained: []string{"a"}}, false},
		{"duplicate member", Epoch{Seq: 1, Members: []string{"a", "a"}}, false},
	}
	for _, tc := range cases {
		err := tc.e.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: invalid epoch accepted", tc.name)
		}
	}
}

func TestEpochActive(t *testing.T) {
	e := Epoch{Seq: 1, Members: []string{"a", "b", "c"}, Drained: []string{"b"}}
	got := e.Active()
	if len(got) != 2 || got[0] != "a" || got[1] != "c" {
		t.Fatalf("Active() = %v", got)
	}
	if !e.IsDrained("b") || e.IsDrained("a") {
		t.Fatal("IsDrained wrong")
	}
}

// node is one test member: a ring + manager serving the membership verbs.
type node struct {
	mgr *Manager
	nd  transport.Node
}

func newNode(t *testing.T, net transport.Network, name string, members []string, bus *telemetry.Bus) *node {
	t.Helper()
	n := &node{}
	nd, err := net.Listen(name, func(ctx context.Context, req transport.Message) (transport.Message, error) {
		switch req.Type {
		case EpochType:
			return n.mgr.HandleEpoch(req)
		case ProposeType:
			return n.mgr.HandlePropose(ctx, req)
		}
		return transport.Message{}, fmt.Errorf("unknown type %q", req.Type)
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nd.Close() })
	rg := ring.New(members)
	rg.Bus = bus
	n.nd = nd
	n.mgr = NewManager(name, rg, nd, bus)
	return n
}

func newCluster(t *testing.T, net *transport.InProcNetwork, names ...string) map[string]*node {
	t.Helper()
	nodes := make(map[string]*node, len(names))
	for _, name := range names {
		nodes[name] = newNode(t, net, name, names, nil)
	}
	return nodes
}

func TestApplyRejectsStaleAndAcceptsResend(t *testing.T) {
	net := transport.NewInProcNetwork()
	n := newNode(t, net, "a", []string{"a", "b"}, nil)
	e2 := Epoch{Seq: 2, Members: []string{"a", "b", "c"}}
	if changed, err := n.mgr.Apply(e2, "b"); err != nil || !changed {
		t.Fatalf("Apply(e2) = %v, %v", changed, err)
	}
	if !n.mgr.Ring.Contains("c") {
		t.Fatal("ring not reconciled to the epoch")
	}
	// Stale sequence.
	if _, err := n.mgr.Apply(Epoch{Seq: 1, Members: []string{"a"}}, "b"); !errors.Is(err, ErrStale) {
		t.Fatalf("stale epoch error = %v", err)
	}
	// Same sequence, different content: conflict, also stale.
	if _, err := n.mgr.Apply(Epoch{Seq: 2, Members: []string{"a", "b"}}, "b"); !errors.Is(err, ErrStale) {
		t.Fatalf("conflicting epoch error = %v", err)
	}
	// Identical re-send: idempotent, accepted, no change.
	if changed, err := n.mgr.Apply(e2, "b"); err != nil || changed {
		t.Fatalf("identical re-send = %v, %v", changed, err)
	}
	if got := n.mgr.Current().Seq; got != 2 {
		t.Fatalf("seq = %d", got)
	}
}

func TestProposeDisseminatesWithQuorum(t *testing.T) {
	net := transport.NewInProcNetwork()
	nodes := newCluster(t, net, "a", "b", "c")
	ctx := context.Background()

	committed, err := nodes["a"].mgr.ProposeChange(ctx, OpDrain, "c")
	if err != nil {
		t.Fatal(err)
	}
	if committed.Seq != 1 || !committed.IsDrained("c") {
		t.Fatalf("committed = %+v", committed)
	}
	for name, n := range nodes {
		cur := n.mgr.Current()
		if cur.Seq != 1 || !cur.IsDrained("c") {
			t.Fatalf("%s holds %+v", name, cur)
		}
		if !n.mgr.Ring.Contains("c") {
			t.Fatalf("%s evicted the drained member from the ring", name)
		}
	}

	// A new member joins via a proposal addressed to any live node.
	joiner := newNode(t, net, "d", []string{"d"}, nil)
	committed, err = nodes["b"].mgr.ProposeChange(ctx, OpJoin, "d")
	if err != nil {
		t.Fatal(err)
	}
	if committed.Seq != 2 || len(committed.Members) != 4 {
		t.Fatalf("join committed = %+v", committed)
	}
	// The joiner itself learned the epoch from dissemination.
	if cur := joiner.mgr.Current(); cur.Seq != 2 || len(cur.Members) != 4 {
		t.Fatalf("joiner holds %+v", cur)
	}
	for name, n := range nodes {
		if !n.mgr.Ring.Contains("d") {
			t.Fatalf("%s ring missing the joiner", name)
		}
	}

	// Undrain and remove round-trip.
	if _, err := nodes["c"].mgr.ProposeChange(ctx, OpUndrain, "c"); err != nil {
		t.Fatal(err)
	}
	if nodes["a"].mgr.IsDrained("c") {
		t.Fatal("undrain did not propagate")
	}
	if _, err := nodes["a"].mgr.ProposeChange(ctx, OpRemove, "d"); err != nil {
		t.Fatal(err)
	}
	if nodes["b"].mgr.Ring.Contains("d") {
		t.Fatal("removed member still in ring")
	}
}

func TestProposeFailsWithoutQuorum(t *testing.T) {
	net := transport.NewInProcNetwork()
	nodes := newCluster(t, net, "a", "b", "c")
	net.Crash("b")
	net.Crash("c")
	_, err := nodes["a"].mgr.ProposeChange(context.Background(), OpDrain, "c")
	if err == nil {
		t.Fatal("proposal committed with 1/3 acks")
	}
	if !strings.Contains(err.Error(), "acks") {
		t.Fatalf("error should report the ack count: %v", err)
	}
}

func TestProposeDrainRejectsLastActive(t *testing.T) {
	net := transport.NewInProcNetwork()
	nodes := newCluster(t, net, "a", "b")
	ctx := context.Background()
	if _, err := nodes["a"].mgr.ProposeChange(ctx, OpDrain, "b"); err != nil {
		t.Fatal(err)
	}
	if _, err := nodes["a"].mgr.ProposeChange(ctx, OpDrain, "a"); err == nil {
		t.Fatal("draining the last active member accepted")
	}
}

func TestManagerPublishesEvents(t *testing.T) {
	net := transport.NewInProcNetwork()
	bus := telemetry.NewBus()
	var events []telemetry.Event
	bus.Subscribe(func(e telemetry.Event) { events = append(events, e) })
	n := newNode(t, net, "a", []string{"a", "b"}, bus)
	if _, err := n.mgr.Apply(Epoch{Seq: 1, Members: []string{"a", "b", "c"}, Drained: []string{"b"}}, "b"); err != nil {
		t.Fatal(err)
	}
	var joined, drained, committed bool
	for _, e := range events {
		switch ev := e.(type) {
		case telemetry.MemberJoined:
			if ev.Member == "c" {
				joined = true
			}
		case telemetry.MemberDrained:
			if ev.Member == "b" && ev.Epoch == 1 {
				drained = true
			}
		case telemetry.EpochCommitted:
			if ev.Seq == 1 && ev.By == "b" {
				committed = true
			}
		}
	}
	if !joined || !drained || !committed {
		t.Fatalf("missing events (joined=%v drained=%v committed=%v): %v", joined, drained, committed, events)
	}
}

func TestPolicyHysteresis(t *testing.T) {
	p := &Policy{LowUtil: 0.3, HighUtil: 0.75, DownAfter: 3, UpAfter: 2, Cooldown: 2, MinActive: 1}
	caps := map[string]float64{"a": 100, "b": 100, "c": 100}
	prices := map[string]float64{"a": 1, "b": 8, "c": 3}
	active := []string{"a", "b", "c"}
	var drained []string

	sample := func(load float64) Sample {
		return Sample{LoadMB: load, CapacityMB: caps, Prices: prices, Active: active, Drained: drained}
	}

	// Two cold windows: below DownAfter, must hold.
	for i := 0; i < 2; i++ {
		if d := p.Evaluate(sample(30)); d.Action != Hold {
			t.Fatalf("window %d: %+v before the streak matured", i, d)
		}
	}
	// A warm window resets the streak.
	if d := p.Evaluate(sample(150)); d.Action != Hold {
		t.Fatalf("comfort-band window acted: %+v", d)
	}
	// Three consecutive cold windows now trigger a power-down of the
	// priciest active member.
	var down Decision
	for i := 0; i < 3; i++ {
		down = p.Evaluate(sample(30))
	}
	if down.Action != PowerDown || down.Target != "b" {
		t.Fatalf("power-down = %+v", down)
	}
	active, drained = []string{"a", "c"}, []string{"b"}

	// Still cold, but cooldown holds the line (no flap).
	for i := 0; i < 2; i++ {
		if d := p.Evaluate(sample(30)); d.Action != Hold {
			t.Fatalf("cooldown window acted: %+v", d)
		}
	}

	// Load returns: two hot windows restore the cheapest drained member.
	var up Decision
	for i := 0; i < 2; i++ {
		up = p.Evaluate(sample(190))
	}
	if up.Action != PowerUp || up.Target != "b" {
		t.Fatalf("power-up = %+v", up)
	}
	active, drained = []string{"a", "b", "c"}, nil

	// Oscillating signal: one cold, one hot, repeatedly — never enough
	// streak to act, so the fleet must not flap.
	for i := 0; i < 10; i++ {
		load := 30.0
		if i%2 == 1 {
			load = 190
		}
		if d := p.Evaluate(sample(load)); d.Action != Hold {
			t.Fatalf("oscillation window %d acted: %+v", i, d)
		}
	}
}

func TestPolicyRespectsMinActive(t *testing.T) {
	p := &Policy{DownAfter: 1, Cooldown: -1, MinActive: 1}
	s := Sample{
		LoadMB:     0,
		CapacityMB: map[string]float64{"a": 100},
		Prices:     map[string]float64{"a": 5},
		Active:     []string{"a"},
	}
	for i := 0; i < 5; i++ {
		if d := p.Evaluate(s); d.Action != Hold {
			t.Fatalf("drained below MinActive: %+v", d)
		}
	}
}
