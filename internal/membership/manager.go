package membership

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"edr/internal/ring"
	"edr/internal/telemetry"
	"edr/internal/transport"
)

// ErrStale marks an epoch rejected because the local node already holds
// one at least as new (and not identical). Proposers catch up by reading
// the sequence in the returned error / ack and re-proposing on top.
var ErrStale = errors.New("membership: stale epoch")

// Manager owns one member's view of the cluster epoch and keeps the
// shared ring.Ring consistent with it. Any member can coordinate a
// change: Propose applies the epoch locally, disseminates it to every
// affected member over the transport, and requires an ack quorum (a
// majority of the NEW epoch's members) before reporting success.
// Dissemination is idempotent and monotonic — members reject stale
// sequences and accept re-sends of the epoch they hold — so a partial
// failure leaves the fleet converging, not split: the next successful
// proposal (or a re-send) completes the rollout.
//
// Manager is safe for concurrent use.
type Manager struct {
	// Self is this member's transport address.
	Self string
	// Ring is the shared membership view the manager rebuilds per epoch.
	Ring *ring.Ring
	// Node sends epoch dissemination messages.
	Node transport.Node
	// Bus, when non-nil, receives EpochCommitted / MemberDrained events
	// (the ring itself publishes MemberJoined / MemberRemoved).
	Bus *telemetry.Bus
	// Timeout bounds each dissemination send; zero means 2s.
	Timeout time.Duration
	// OnChange, when non-nil, runs after every locally applied epoch.
	OnChange func(e Epoch)

	mu  sync.Mutex
	cur Epoch

	// proposeMu serializes local proposals so two concurrent coordinators
	// on this node cannot mint the same sequence number.
	proposeMu sync.Mutex
}

// NewManager builds a manager over the ring's current members as the
// bootstrap epoch (Seq 0, nobody drained). Every fleet node derives the
// same bootstrap from the same seed member list.
func NewManager(self string, rg *ring.Ring, node transport.Node, bus *telemetry.Bus) *Manager {
	return &Manager{
		Self: self,
		Ring: rg,
		Node: node,
		Bus:  bus,
		cur:  Epoch{Seq: 0, Members: rg.Members()},
	}
}

// Current returns the epoch this member holds.
func (m *Manager) Current() Epoch {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cur.clone()
}

// IsDrained reports whether member is drained in the current epoch.
func (m *Manager) IsDrained(member string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cur.IsDrained(member)
}

// Active returns the current epoch's round-eligible members.
func (m *Manager) Active() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cur.Active()
}

func (m *Manager) timeout() time.Duration {
	if m.Timeout > 0 {
		return m.Timeout
	}
	return 2 * time.Second
}

// Apply installs an epoch: it rejects stale sequences (ErrStale), is a
// no-op for the identical epoch already held, and otherwise swaps the
// current epoch and reconciles the ring (Add for admissions, Remove for
// departures — both publish their telemetry events). `by` names the node
// the epoch came from for the EpochCommitted event. The returned bool
// reports whether the view actually changed.
//
// Note the ring is reconciled against the epoch's full member list: a
// member the failure detector pruned but the epoch still lists is
// re-added and, if truly dead, re-pruned by the detector — epochs are
// authoritative for planned configuration, heartbeats for liveness.
func (m *Manager) Apply(e Epoch, by string) (bool, error) {
	e.normalize()
	if err := e.Validate(); err != nil {
		return false, err
	}
	m.mu.Lock()
	prev := m.cur
	if e.Seq < prev.Seq || (e.Seq == prev.Seq && !e.Equal(&prev)) {
		m.mu.Unlock()
		return false, fmt.Errorf("%w: got seq %d, holding %d", ErrStale, e.Seq, prev.Seq)
	}
	if e.Seq == prev.Seq {
		m.mu.Unlock()
		return false, nil // idempotent re-send
	}
	m.cur = e.clone()
	m.mu.Unlock()

	inNew := make(map[string]bool, len(e.Members))
	for _, mem := range e.Members {
		inNew[mem] = true
	}
	for _, mem := range m.Ring.Members() {
		if !inNew[mem] {
			m.Ring.Remove(mem)
		}
	}
	for _, mem := range e.Members {
		m.Ring.Add(mem)
	}
	for _, d := range e.Drained {
		if !prev.IsDrained(d) {
			m.Bus.Publish(telemetry.MemberDrained{Member: d, Epoch: e.Seq})
		}
	}
	m.Bus.Publish(telemetry.EpochCommitted{
		Seq:     e.Seq,
		Members: append([]string(nil), e.Members...),
		Drained: append([]string(nil), e.Drained...),
		By:      by,
	})
	if m.OnChange != nil {
		m.OnChange(e.clone())
	}
	return true, nil
}

// Propose commits an epoch fleet-wide: apply locally, disseminate to the
// union of the previous and new member lists, and require accepted acks
// from a majority of the NEW epoch's members (this node included). On
// quorum failure the local application stands — monotonic idempotent
// dissemination means a partially applied epoch is merely an epoch still
// rolling out — and the error reports how far it got.
func (m *Manager) Propose(ctx context.Context, next Epoch) (Epoch, error) {
	next.normalize()
	if err := next.Validate(); err != nil {
		return Epoch{}, err
	}
	m.proposeMu.Lock()
	defer m.proposeMu.Unlock()
	prev := m.Current()
	if _, err := m.Apply(next, m.Self); err != nil {
		return Epoch{}, err
	}

	inNew := make(map[string]bool, len(next.Members))
	for _, mem := range next.Members {
		inNew[mem] = true
	}
	targets := sortedUnique(append(append([]string(nil), prev.Members...), next.Members...))
	acks := 0
	if inNew[m.Self] {
		acks = 1 // the local application
	}
	var (
		wg   sync.WaitGroup
		ackM sync.Mutex
		errs []string
	)
	body := EpochBody{Epoch: next}
	for _, to := range targets {
		if to == m.Self {
			continue
		}
		wg.Add(1)
		go func(to string) {
			defer wg.Done()
			ack, err := m.sendEpoch(ctx, to, body)
			ackM.Lock()
			defer ackM.Unlock()
			switch {
			case err != nil:
				errs = append(errs, fmt.Sprintf("%s: %v", to, err))
			case !ack.Accepted:
				errs = append(errs, fmt.Sprintf("%s: rejected, holds seq %d", to, ack.Seq))
			case inNew[to]:
				acks++
			}
		}(to)
	}
	wg.Wait()
	if 2*acks <= len(next.Members) {
		return Epoch{}, fmt.Errorf("membership: epoch %d reached %d/%d acks (need majority): %v",
			next.Seq, acks, len(next.Members), errs)
	}
	return next, nil
}

// sendEpoch ships one epoch to one member and decodes its ack.
func (m *Manager) sendEpoch(ctx context.Context, to string, body EpochBody) (EpochAck, error) {
	req, err := transport.NewMessage(EpochType, m.Self, body)
	if err != nil {
		return EpochAck{}, err
	}
	cctx, cancel := context.WithTimeout(ctx, m.timeout())
	defer cancel()
	resp, err := m.Node.Send(cctx, to, req)
	if err != nil {
		return EpochAck{}, err
	}
	var ack EpochAck
	if err := resp.DecodeBody(&ack); err != nil {
		return EpochAck{}, err
	}
	return ack, nil
}

// ProposeChange builds the next epoch for one operation on addr and
// proposes it. This is the entry point the CLI verbs and the autoscaler
// use; it rejects changes that would leave no active member.
func (m *Manager) ProposeChange(ctx context.Context, op Op, addr string) (Epoch, error) {
	if addr == "" {
		return Epoch{}, fmt.Errorf("membership: %s with empty address", op)
	}
	cur := m.Current()
	next := cur.clone()
	next.Seq++
	contains := func(list []string, s string) bool {
		for _, x := range list {
			if x == s {
				return true
			}
		}
		return false
	}
	without := func(list []string, s string) []string {
		out := list[:0]
		for _, x := range list {
			if x != s {
				out = append(out, x)
			}
		}
		return out
	}
	switch op {
	case OpJoin:
		next.Members = sortedUnique(append(next.Members, addr))
		next.Drained = without(next.Drained, addr)
	case OpDrain:
		if !contains(next.Members, addr) {
			return Epoch{}, fmt.Errorf("membership: drain of non-member %s", addr)
		}
		next.Drained = sortedUnique(append(next.Drained, addr))
	case OpUndrain:
		next.Drained = without(next.Drained, addr)
	case OpRemove:
		next.Members = without(next.Members, addr)
		next.Drained = without(next.Drained, addr)
	default:
		return Epoch{}, fmt.Errorf("membership: unknown op %q", op)
	}
	// An op already reflected in the held epoch does not mint a new
	// sequence — it re-proposes the epoch we hold. Dissemination is
	// idempotent and monotonic, so this converges a rollout that
	// previously failed partway (retrying a drain after a quorum failure
	// must re-send the epoch, not silently no-op).
	probe := next.clone()
	probe.Seq = cur.Seq
	probe.normalize()
	if probe.Equal(&cur) {
		return m.Propose(ctx, cur)
	}
	return m.Propose(ctx, next)
}

// JoinVia asks an existing fleet member to coordinate this node's join
// and installs the committed epoch locally. A stale answer from Apply is
// fine — it means the coordinator's own fan-out reached this node before
// the reply did.
func (m *Manager) JoinVia(ctx context.Context, contact string) (Epoch, error) {
	req, err := transport.NewMessage(ProposeType, m.Self, ProposeBody{Op: OpJoin, Addr: m.Self})
	if err != nil {
		return Epoch{}, err
	}
	cctx, cancel := context.WithTimeout(ctx, m.timeout())
	defer cancel()
	resp, err := m.Node.Send(cctx, contact, req)
	if err != nil {
		return Epoch{}, fmt.Errorf("membership: join via %s: %w", contact, err)
	}
	var reply ProposeReply
	if err := resp.DecodeBody(&reply); err != nil {
		return Epoch{}, err
	}
	if _, err := m.Apply(reply.Epoch, contact); err != nil && !errors.Is(err, ErrStale) {
		return Epoch{}, err
	}
	return reply.Epoch, nil
}

// HandleEpoch applies a disseminated epoch (EpochType handler). Stale
// epochs are acked with Accepted=false and the newer local sequence —
// a protocol answer, not a transport error — so coordinators can
// distinguish "behind" from "unreachable".
func (m *Manager) HandleEpoch(req transport.Message) (transport.Message, error) {
	var body EpochBody
	if err := req.DecodeBody(&body); err != nil {
		return transport.Message{}, err
	}
	_, err := m.Apply(body.Epoch, req.From)
	if err != nil && !errors.Is(err, ErrStale) {
		return transport.Message{}, err
	}
	cur := m.Current()
	return transport.NewMessage(EpochType+".ack", m.Self, EpochAck{
		Seq:      cur.Seq,
		Accepted: err == nil,
	})
}

// HandlePropose coordinates a membership change on behalf of the sender
// (ProposeType handler): CLI verbs and joining daemons address any live
// member, which runs ProposeChange and returns the committed epoch.
func (m *Manager) HandlePropose(ctx context.Context, req transport.Message) (transport.Message, error) {
	var body ProposeBody
	if err := req.DecodeBody(&body); err != nil {
		return transport.Message{}, err
	}
	committed, err := m.ProposeChange(ctx, body.Op, body.Addr)
	if err != nil {
		return transport.Message{}, err
	}
	return transport.NewMessage(ProposeType+".ack", m.Self, ProposeReply{Epoch: committed})
}
