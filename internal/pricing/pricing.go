// Package pricing generates the regional electricity prices u_n used by
// the EDR energy cost model.
//
// The paper (§IV-A.2) draws an integer price between 1 and 20 ¢/kWh for
// each replica in every experiment "to simulate various power prices of
// data centers in different geographical locations", and fixes the vector
// {1, 8, 1, 6, 1, 5, 2, 3} for the Fig. 6/7 runs. This package provides
// both, plus a small catalog of real-world-shaped regional profiles for
// the examples.
package pricing

import (
	"fmt"

	"edr/internal/sim"
)

// MinPrice and MaxPrice bound the paper's uniform price draw (¢/kWh).
const (
	MinPrice = 1
	MaxPrice = 20
)

// PaperFigure6Prices is the fixed price vector used for the paper's
// per-replica cost figures: replicas No.1..No.8 pay 1,8,1,6,1,5,2,3 ¢/kWh.
func PaperFigure6Prices() []float64 {
	return []float64{1, 8, 1, 6, 1, 5, 2, 3}
}

// Uniform draws n integer prices uniformly from [MinPrice, MaxPrice],
// reproducing the paper's random price generation.
func Uniform(r *sim.Rand, n int) []float64 {
	if n <= 0 {
		panic(fmt.Sprintf("pricing: Uniform(%d) needs n > 0", n))
	}
	prices := make([]float64, n)
	for i := range prices {
		prices[i] = float64(r.IntBetween(MinPrice, MaxPrice))
	}
	return prices
}

// Region is a named electricity-market profile for examples and docs.
type Region struct {
	// Name is a human-readable market label.
	Name string
	// CentsPerKWh is the flat industrial rate.
	CentsPerKWh float64
}

// Regions is a small catalog of stylized 2013-era regional industrial
// rates, ordered cheap to expensive. Values are illustrative; the EDR
// optimization depends only on their ratios.
func Regions() []Region {
	return []Region{
		{Name: "us-northwest-hydro", CentsPerKWh: 3},
		{Name: "us-midwest", CentsPerKWh: 5},
		{Name: "us-southeast", CentsPerKWh: 6},
		{Name: "us-texas", CentsPerKWh: 7},
		{Name: "eu-nordics", CentsPerKWh: 8},
		{Name: "us-california", CentsPerKWh: 12},
		{Name: "eu-west", CentsPerKWh: 15},
		{Name: "asia-east", CentsPerKWh: 18},
	}
}

// FromRegions returns the first n catalog prices, cycling if n exceeds the
// catalog size.
func FromRegions(n int) []float64 {
	if n <= 0 {
		panic(fmt.Sprintf("pricing: FromRegions(%d) needs n > 0", n))
	}
	regions := Regions()
	prices := make([]float64, n)
	for i := range prices {
		prices[i] = regions[i%len(regions)].CentsPerKWh
	}
	return prices
}
