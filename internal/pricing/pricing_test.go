package pricing

import (
	"testing"

	"edr/internal/sim"
)

func TestPaperFigure6Prices(t *testing.T) {
	want := []float64{1, 8, 1, 6, 1, 5, 2, 3}
	got := PaperFigure6Prices()
	if len(got) != 8 {
		t.Fatalf("len = %d, want 8", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("prices = %v, want %v", got, want)
		}
	}
}

func TestPaperPricesFreshSlice(t *testing.T) {
	a := PaperFigure6Prices()
	a[0] = 99
	if b := PaperFigure6Prices(); b[0] != 1 {
		t.Fatal("PaperFigure6Prices shares state across calls")
	}
}

func TestUniformInRange(t *testing.T) {
	r := sim.NewRand(42)
	for trial := 0; trial < 50; trial++ {
		prices := Uniform(r, 8)
		if len(prices) != 8 {
			t.Fatalf("len = %d", len(prices))
		}
		for _, u := range prices {
			if u < MinPrice || u > MaxPrice || u != float64(int(u)) {
				t.Fatalf("price %g outside integer [1,20]", u)
			}
		}
	}
}

func TestUniformDeterministicBySeed(t *testing.T) {
	a := Uniform(sim.NewRand(7), 8)
	b := Uniform(sim.NewRand(7), 8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different prices")
		}
	}
}

func TestUniformCoversRange(t *testing.T) {
	r := sim.NewRand(11)
	seen := map[float64]bool{}
	for trial := 0; trial < 200; trial++ {
		for _, u := range Uniform(r, 8) {
			seen[u] = true
		}
	}
	if len(seen) != 20 {
		t.Fatalf("only %d/20 price levels drawn", len(seen))
	}
}

func TestUniformBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uniform(r, 0) did not panic")
		}
	}()
	Uniform(sim.NewRand(1), 0)
}

func TestRegionsOrderedCheapToExpensive(t *testing.T) {
	regions := Regions()
	if len(regions) < 4 {
		t.Fatalf("catalog too small: %d", len(regions))
	}
	for i := 1; i < len(regions); i++ {
		if regions[i].CentsPerKWh < regions[i-1].CentsPerKWh {
			t.Fatalf("catalog not ordered at %d: %v", i, regions)
		}
	}
	for _, reg := range regions {
		if reg.Name == "" || reg.CentsPerKWh <= 0 {
			t.Fatalf("bad region %+v", reg)
		}
	}
}

func TestFromRegionsCycles(t *testing.T) {
	n := len(Regions()) + 3
	prices := FromRegions(n)
	if len(prices) != n {
		t.Fatalf("len = %d, want %d", len(prices), n)
	}
	if prices[len(Regions())] != prices[0] {
		t.Fatal("FromRegions does not cycle")
	}
}

func TestFromRegionsBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromRegions(-1) did not panic")
		}
	}()
	FromRegions(-1)
}
