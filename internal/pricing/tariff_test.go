package pricing

import (
	"testing"
	"time"

	"edr/internal/sim"
)

func baseTariff() Tariff {
	return Tariff{
		Name:            "test",
		BaseCentsPerKWh: 3,
		PeakCentsPerKWh: 15,
		PeakStartHour:   17,
		PeakEndHour:     22,
	}
}

func at(hour int) time.Time {
	return time.Date(2013, 9, 23, hour, 30, 0, 0, time.UTC)
}

func TestTariffPeakWindow(t *testing.T) {
	tr := baseTariff()
	cases := map[int]float64{
		0: 3, 12: 3, 16: 3,
		17: 15, 19: 15, 21: 15,
		22: 3, 23: 3,
	}
	for hour, want := range cases {
		if got := tr.At(at(hour)); got != want {
			t.Errorf("At(%02d:30) = %g, want %g", hour, got, want)
		}
	}
}

func TestTariffWrapsMidnight(t *testing.T) {
	tr := baseTariff()
	tr.PeakStartHour, tr.PeakEndHour = 22, 6
	for hour, want := range map[int]float64{21: 3, 22: 15, 23: 15, 0: 15, 5: 15, 6: 3, 12: 3} {
		if got := tr.At(at(hour)); got != want {
			t.Errorf("wrap At(%02d:30) = %g, want %g", hour, got, want)
		}
	}
}

func TestTariffUTCOffset(t *testing.T) {
	tr := baseTariff()
	tr.UTCOffsetHours = 8 // local evening = UTC morning
	// UTC 10:30 → local 18:30 (peak).
	if got := tr.At(at(10)); got != 15 {
		t.Fatalf("offset peak = %g, want 15", got)
	}
	if got := tr.At(at(18)); got != 3 {
		t.Fatalf("offset off-peak = %g, want 3", got)
	}
}

func TestTariffValidate(t *testing.T) {
	good := baseTariff()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.BaseCentsPerKWh = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero base accepted")
	}
	bad = good
	bad.PeakCentsPerKWh = 1
	if err := bad.Validate(); err == nil {
		t.Fatal("peak below base accepted")
	}
	bad = good
	bad.PeakStartHour = 25
	if err := bad.Validate(); err == nil {
		t.Fatal("bad peak hour accepted")
	}
}

func TestSchedulePricesAt(t *testing.T) {
	s := Schedule{
		baseTariff(),
		{Name: "b", BaseCentsPerKWh: 5, PeakCentsPerKWh: 20, PeakStartHour: 9, PeakEndHour: 12},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	prices := s.PricesAt(at(10)) // first off-peak, second in peak
	if prices[0] != 3 || prices[1] != 20 {
		t.Fatalf("PricesAt = %v", prices)
	}
}

func TestScheduleValidateEmpty(t *testing.T) {
	if err := (Schedule{}).Validate(); err == nil {
		t.Fatal("empty schedule accepted")
	}
}

func TestWorldScheduleSpreadsPeaks(t *testing.T) {
	s := WorldSchedule(8)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s) != 8 {
		t.Fatalf("regions = %d", len(s))
	}
	// At any instant some regions must be off-peak: the cheapest price in
	// the snapshot is the base rate around the clock.
	for hour := 0; hour < 24; hour++ {
		prices := s.PricesAt(at(hour))
		minP, maxP := prices[0], prices[0]
		for _, p := range prices {
			if p < minP {
				minP = p
			}
			if p > maxP {
				maxP = p
			}
		}
		if minP != 3 {
			t.Fatalf("hour %d: no off-peak region (min %g)", hour, minP)
		}
		// During most of the day someone is peaking (5h window × 8 regions
		// spread over 24h ⇒ always at least one in peak).
		if maxP != 15 {
			t.Fatalf("hour %d: no peak region (max %g)", hour, maxP)
		}
	}
}

func TestWorldScheduleBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("WorldSchedule(0) did not panic")
		}
	}()
	WorldSchedule(0)
}

func TestTariffDeterministicWithSim(t *testing.T) {
	// Tariffs are pure functions of time; combined with the virtual clock
	// they give reproducible dynamic-pricing rounds.
	clock := sim.NewVirtualClock()
	s := WorldSchedule(4)
	a := s.PricesAt(clock.Now())
	b := s.PricesAt(clock.Now())
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same instant, different prices")
		}
	}
}
