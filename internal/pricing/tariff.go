package pricing

import (
	"fmt"
	"time"
)

// Tariff is a time-of-use electricity price schedule for one region —
// the dynamic-pricing extension of the paper's static u_n ("considering
// data transfer under varied regional power costs"): EDR re-runs its
// scheduling rounds as tariffs flip between peak and off-peak, shifting
// load toward whichever regions are currently cheap.
type Tariff struct {
	// Name labels the region.
	Name string
	// BaseCentsPerKWh is the off-peak price.
	BaseCentsPerKWh float64
	// PeakCentsPerKWh is the price during the peak window.
	PeakCentsPerKWh float64
	// PeakStartHour and PeakEndHour bound the local peak window
	// [start, end) in hours 0..24. A window wrapping midnight
	// (start > end) is supported.
	PeakStartHour, PeakEndHour int
	// UTCOffsetHours shifts the region's local clock from the simulation
	// clock, so geographically spread regions peak at different instants
	// — the effect EDR's cost model exploits.
	UTCOffsetHours int
}

// Validate checks the schedule.
func (t Tariff) Validate() error {
	switch {
	case t.BaseCentsPerKWh <= 0:
		return fmt.Errorf("pricing: tariff %q: base price %g", t.Name, t.BaseCentsPerKWh)
	case t.PeakCentsPerKWh < t.BaseCentsPerKWh:
		return fmt.Errorf("pricing: tariff %q: peak %g below base %g", t.Name, t.PeakCentsPerKWh, t.BaseCentsPerKWh)
	case t.PeakStartHour < 0 || t.PeakStartHour > 23 || t.PeakEndHour < 0 || t.PeakEndHour > 24:
		return fmt.Errorf("pricing: tariff %q: peak window [%d, %d)", t.Name, t.PeakStartHour, t.PeakEndHour)
	}
	return nil
}

// At returns the price in effect at the given simulation instant.
func (t Tariff) At(at time.Time) float64 {
	local := at.Add(time.Duration(t.UTCOffsetHours) * time.Hour)
	h := local.Hour()
	inPeak := false
	if t.PeakStartHour <= t.PeakEndHour {
		inPeak = h >= t.PeakStartHour && h < t.PeakEndHour
	} else { // wraps midnight
		inPeak = h >= t.PeakStartHour || h < t.PeakEndHour
	}
	if inPeak {
		return t.PeakCentsPerKWh
	}
	return t.BaseCentsPerKWh
}

// Schedule is one tariff per replica.
type Schedule []Tariff

// Validate checks every tariff.
func (s Schedule) Validate() error {
	if len(s) == 0 {
		return fmt.Errorf("pricing: empty tariff schedule")
	}
	for _, t := range s {
		if err := t.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// PricesAt snapshots the per-replica prices at an instant — the vector a
// scheduling round at that instant should optimize against.
func (s Schedule) PricesAt(at time.Time) []float64 {
	prices := make([]float64, len(s))
	for i, t := range s {
		prices[i] = t.At(at)
	}
	return prices
}

// WorldSchedule builds a stylized n-region schedule: every region pays 3¢
// off-peak and 15¢ during its local 17:00–22:00 evening peak, with UTC
// offsets spread around the globe so at any instant some regions are
// cheap — the arbitrage EDR's dynamic cost model is built to capture.
func WorldSchedule(n int) Schedule {
	if n <= 0 {
		panic(fmt.Sprintf("pricing: WorldSchedule(%d)", n))
	}
	s := make(Schedule, n)
	for i := range s {
		s[i] = Tariff{
			Name:            fmt.Sprintf("region%d", i+1),
			BaseCentsPerKWh: 3,
			PeakCentsPerKWh: 15,
			PeakStartHour:   17,
			PeakEndHour:     22,
			UTCOffsetHours:  (i * 24) / n,
		}
	}
	return s
}
